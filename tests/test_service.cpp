// Routing service: wire envelope, RCU snapshots, ServiceCore semantics,
// and the pipe-mode end-to-end daemon conversation.
//
// The contracts under test (ISSUE: routing-as-a-service):
//   * every envelope kind round-trips the wire encoding bit-exactly, and
//     truncated/garbage/oversized/unversioned frames come back as
//     structured errors, never closed connections;
//   * the daemon's tables are bitwise identical to the in-process engine's
//     — serving through the envelope adds no routing drift;
//   * a lookup racing a repair sees the pre-repair or post-repair
//     snapshot, never a torn mix;
//   * drain: after shutdown, later requests get kErrDraining and the
//     serving loop exits cleanly.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <cstdio>

#include "fault/churn.hpp"
#include "fault/incremental.hpp"
#include "fault/schedule.hpp"
#include "obs/journal/journal.hpp"
#include "obs/metrics.hpp"
#include "service/core.hpp"
#include "service/envelope.hpp"
#include "service/frame.hpp"
#include "service/replay.hpp"
#include "service/server.hpp"
#include "topology/generators.hpp"

namespace dfsssp::service {
namespace {

// ---------------------------------------------------------------- envelope

TEST(ServiceEnvelope, RequestRoundTripsEveryKind) {
  ServiceRequest route;
  route.kind = MsgKind::kRoute;
  route.request_id = 42;
  route.max_layers = 4;

  ServiceRequest fault;
  fault.kind = MsgKind::kFaultEvent;
  fault.request_id = 7;
  fault.fault_kind = static_cast<std::uint8_t>(FaultKind::kSwitchDown);
  fault.channel = 123;
  fault.sw = 9;

  ServiceRequest lookup;
  lookup.kind = MsgKind::kLookup;
  lookup.request_id = 0xFFFF'FFFF'FFFF'FFFFull;
  lookup.src_switch = 3;
  lookup.dst_terminal = 200;

  for (const ServiceRequest& req : {route, fault, lookup}) {
    ServiceRequest out;
    ASSERT_EQ(decode_request(encode_request(req), out), Status::kOk);
    EXPECT_EQ(out.kind, req.kind);
    EXPECT_EQ(out.request_id, req.request_id);
    EXPECT_EQ(out.max_layers, req.kind == MsgKind::kRoute ? req.max_layers
                                                          : Layer{0});
  }
  ServiceRequest out;
  ASSERT_EQ(decode_request(encode_request(fault), out), Status::kOk);
  EXPECT_EQ(out.fault_kind, fault.fault_kind);
  EXPECT_EQ(out.channel, fault.channel);
  EXPECT_EQ(out.sw, fault.sw);
  ASSERT_EQ(decode_request(encode_request(lookup), out), Status::kOk);
  EXPECT_EQ(out.src_switch, lookup.src_switch);
  EXPECT_EQ(out.dst_terminal, lookup.dst_terminal);

  for (MsgKind kind : {MsgKind::kRepair, MsgKind::kStats,
                       MsgKind::kSnapshotInfo, MsgKind::kShutdown}) {
    ServiceRequest req;
    req.kind = kind;
    req.request_id = 5;
    ASSERT_EQ(decode_request(encode_request(req), out), Status::kOk);
    EXPECT_EQ(out.kind, kind);
    EXPECT_EQ(out.request_id, 5u);
  }
}

TEST(ServiceEnvelope, ResponseRoundTripsBodyFields) {
  ServiceResponse repair;
  repair.kind = MsgKind::kRepair;
  repair.request_id = 11;
  repair.snapshot_version = 3;
  repair.layers = 2;
  repair.paths = 64436;
  repair.events_coalesced = 5;
  repair.incremental = true;
  repair.destinations_rerouted = 96;
  repair.paths_migrated = 6816;
  repair.elapsed_ns = 4'700'000;

  ServiceResponse out;
  ASSERT_EQ(decode_response(encode_response(repair), out), Status::kOk);
  EXPECT_EQ(out.snapshot_version, 3u);
  EXPECT_EQ(out.layers, 2);
  EXPECT_EQ(out.paths, 64436u);
  EXPECT_EQ(out.events_coalesced, 5u);
  EXPECT_TRUE(out.incremental);
  EXPECT_EQ(out.destinations_rerouted, 96u);
  EXPECT_EQ(out.paths_migrated, 6816u);
  EXPECT_EQ(out.elapsed_ns, 4'700'000u);

  ServiceResponse info;
  info.kind = MsgKind::kSnapshotInfo;
  info.snapshot_version = 9;
  info.snapshot_swaps = 12;
  info.layers = 3;
  info.paths = 99;
  info.switches = 90;
  info.terminals = 724;
  info.pending_events = 2;
  info.engine = "dfsssp";
  info.topology = "deimos";
  ASSERT_EQ(decode_response(encode_response(info), out), Status::kOk);
  EXPECT_EQ(out.snapshot_swaps, 12u);
  EXPECT_EQ(out.switches, 90u);
  EXPECT_EQ(out.terminals, 724u);
  EXPECT_EQ(out.engine, "dfsssp");
  EXPECT_EQ(out.topology, "deimos");

  ServiceResponse err = error_response(ServiceRequest{}, Status::kErrDraining,
                                       "daemon is draining");
  ASSERT_EQ(decode_response(encode_response(err), out), Status::kOk);
  EXPECT_EQ(out.status, Status::kErrDraining);
  EXPECT_EQ(out.error, "daemon is draining");
}

TEST(ServiceEnvelope, RejectsTruncatedAndGarbageFrames) {
  ServiceRequest req;
  req.kind = MsgKind::kLookup;
  req.request_id = 77;
  req.src_switch = 1;
  req.dst_terminal = 2;
  const std::string good = encode_request(req);

  ServiceRequest out;
  // Every proper prefix of a valid frame is malformed, never a crash.
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_EQ(decode_request(std::string_view(good).substr(0, cut), out),
              Status::kErrMalformed)
        << "prefix length " << cut;
  }
  // Trailing garbage is tolerated (forward compatibility within a version).
  EXPECT_EQ(decode_request(good + "extra-bytes", out), Status::kOk);
  EXPECT_EQ(out.request_id, 77u);

  // Pure garbage decodes as malformed / unknown kind / bad version —
  // structured errors all.
  const std::string garbage = "\xDE\xAD\xBE\xEF\xDE\xAD\xBE\xEF nonsense";
  EXPECT_NE(decode_request(garbage, out), Status::kOk);

  std::string bad_version = good;
  bad_version[0] = 99;  // version word
  EXPECT_EQ(decode_request(bad_version, out), Status::kErrUnsupportedVersion);

  std::string bad_kind = good;
  bad_kind[2] = 0x7F;  // kind word
  EXPECT_EQ(decode_request(bad_kind, out), Status::kErrUnknownKind);
  // The header still decoded: the server can echo the request id.
  EXPECT_EQ(out.request_id, 77u);
}

// ---------------------------------------------------------------- snapshot

TEST(SnapshotSlot, RcuReadersKeepTheirGeneration) {
  SnapshotSlot slot;
  EXPECT_EQ(slot.load(), nullptr);
  EXPECT_EQ(slot.version(), 0u);

  auto first = std::make_shared<ForwardingSnapshot>();
  first->paths = 1;
  EXPECT_EQ(slot.publish(std::move(first)), 1u);
  const std::shared_ptr<const ForwardingSnapshot> held = slot.load();
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->version, 1u);

  auto second = std::make_shared<ForwardingSnapshot>();
  second->paths = 2;
  EXPECT_EQ(slot.publish(std::move(second)), 2u);

  // The old generation stays fully readable for as long as it is held.
  EXPECT_EQ(held->version, 1u);
  EXPECT_EQ(held->paths, 1u);
  EXPECT_EQ(slot.load()->version, 2u);
  EXPECT_EQ(slot.swaps(), 2u);
}

// ------------------------------------------------------------ service core

ServiceRequest make_lookup(NodeId src, NodeId dst) {
  ServiceRequest req;
  req.kind = MsgKind::kLookup;
  req.src_switch = src;
  req.dst_terminal = dst;
  return req;
}

ServiceRequest make_fault(const FaultEvent& e) {
  ServiceRequest req;
  req.kind = MsgKind::kFaultEvent;
  req.fault_kind = static_cast<std::uint8_t>(e.kind);
  req.channel = e.channel;
  req.sw = e.sw;
  return req;
}

void expect_tables_identical(const Network& net, const RoutingTable& a,
                             const RoutingTable& b) {
  ASSERT_EQ(a.num_layers(), b.num_layers());
  for (NodeId sw : net.switches()) {
    for (NodeId dst : net.terminals()) {
      ASSERT_EQ(a.next(sw, dst), b.next(sw, dst))
          << "next mismatch at sw " << sw << " dst " << dst;
      ASSERT_EQ(a.layer(sw, dst), b.layer(sw, dst))
          << "layer mismatch at sw " << sw << " dst " << dst;
    }
  }
}

TEST(ServiceCore, TablesBitwiseIdenticalToInProcessEngine) {
  obs::Registry reg;
  Topology served = make_kary_ntree(4, 2);
  const Topology reference_topo = served;  // identical twin for the engine

  ServiceCoreOptions options;
  options.metrics = &reg;
  ServiceCore core(std::move(served), options);

  ServiceRequest route;
  route.kind = MsgKind::kRoute;
  const ServiceResponse routed = core.handle(route);
  ASSERT_EQ(routed.status, Status::kOk);
  EXPECT_EQ(routed.snapshot_version, 1u);

  IncrementalDfsssp engine;
  const RouteResponse direct = engine.route(RouteRequest(reference_topo));
  ASSERT_TRUE(direct.ok);

  const auto snap = core.snapshot();
  ASSERT_NE(snap, nullptr);
  expect_tables_identical(reference_topo.net, snap->table, direct.table);
  EXPECT_EQ(snap->paths, direct.stats.paths);
  EXPECT_EQ(snap->layers_used, direct.stats.layers_used);
}

TEST(ServiceCore, BatchedRepairMatchesInProcessChurn) {
  obs::Registry reg;
  Topology served = make_kary_ntree(4, 2);
  Topology mirror = served;

  ServiceCoreOptions options;
  options.metrics = &reg;
  ServiceCore core(std::move(served), options);
  ASSERT_EQ(core.handle([] {
                  ServiceRequest r;
                  r.kind = MsgKind::kRoute;
                  return r;
                }())
                .status,
            Status::kOk);

  IncrementalDfsssp engine;
  ASSERT_TRUE(engine.route(RouteRequest(mirror)).ok);
  ChurnEngine churn(mirror);

  const FaultSchedule schedule =
      FaultSchedule::random(mirror.net, {.num_events = 12}, 0xFEED);
  ASSERT_FALSE(schedule.empty());

  // Feed all events to the daemon, then one repair coalesces them; mirror
  // the exact same batch in-process.
  for (const FaultEvent& e : schedule) {
    ASSERT_EQ(core.handle(make_fault(e)).status, Status::kOk);
  }
  ServiceRequest repair;
  repair.kind = MsgKind::kRepair;
  const ServiceResponse repaired = core.handle(repair);
  ASSERT_EQ(repaired.status, Status::kOk);
  EXPECT_EQ(repaired.events_coalesced, schedule.size());

  const ChurnDelta delta = churn.apply_all(
      std::span<const FaultEvent>(schedule.events().data(), schedule.size()));
  const RouteResponse direct = engine.repair(RouteRequest(mirror), delta);
  ASSERT_TRUE(direct.ok);

  const auto snap = core.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version, repaired.snapshot_version);
  expect_tables_identical(mirror.net, snap->table, direct.table);
}

TEST(ServiceCore, LookupBeforeRouteAndBadIdsAreStructuredErrors) {
  obs::Registry reg;
  ServiceCoreOptions options;
  options.metrics = &reg;
  ServiceCore core(make_kary_ntree(4, 2), options);

  EXPECT_EQ(core.handle(make_lookup(0, 1)).status, Status::kErrNotRouted);
  ServiceRequest repair;
  repair.kind = MsgKind::kRepair;
  EXPECT_EQ(core.handle(repair).status, Status::kErrNotRouted);

  ServiceRequest route;
  route.kind = MsgKind::kRoute;
  ASSERT_EQ(core.handle(route).status, Status::kOk);

  const Network& net = core.topo().net;
  const NodeId a_switch = net.switches().front();
  const NodeId a_terminal = net.terminals().front();
  EXPECT_EQ(core.handle(make_lookup(a_terminal, a_terminal)).status,
            Status::kErrBadArgument);
  EXPECT_EQ(core.handle(make_lookup(a_switch, a_switch)).status,
            Status::kErrBadArgument);
  EXPECT_EQ(core.handle(make_lookup(1u << 30, a_terminal)).status,
            Status::kErrBadArgument);
  EXPECT_EQ(core.handle(make_lookup(a_switch, a_terminal)).status,
            Status::kOk);

  // A fault event on a terminal injection/ejection channel is rejected at
  // enqueue time — it would otherwise throw inside the next repair's
  // ChurnEngine batch and take the daemon down.
  FaultEvent bad;
  bad.kind = FaultKind::kLinkDown;
  bad.channel = net.injection_channel(a_terminal);
  EXPECT_EQ(core.handle(make_fault(bad)).status, Status::kErrBadArgument);
  bad.channel = 1u << 30;
  EXPECT_EQ(core.handle(make_fault(bad)).status, Status::kErrBadArgument);
}

TEST(ServiceCore, LookupDuringRepairSeesOldOrNewSnapshotNeverTorn) {
  obs::Registry reg;
  Topology served = make_kary_ntree(4, 2);
  Topology mirror = served;

  ServiceCoreOptions options;
  options.metrics = &reg;
  ServiceCore core(std::move(served), options);
  ServiceRequest route;
  route.kind = MsgKind::kRoute;
  ASSERT_EQ(core.handle(route).status, Status::kOk);

  // Reference tables for generation 1 (pre-repair) and generation 2
  // (post-repair), computed in-process on the identical twin.
  IncrementalDfsssp engine;
  const RouteResponse before = engine.route(RouteRequest(mirror));
  ASSERT_TRUE(before.ok);
  ChurnEngine churn(mirror);
  const FaultSchedule kills =
      FaultSchedule::link_kills(mirror.net, 3, 0xBEEF);
  ASSERT_FALSE(kills.empty());
  const ChurnDelta delta = churn.apply_all(std::span<const FaultEvent>(
      kills.events().data(), kills.size()));
  const RouteResponse after = engine.repair(RouteRequest(mirror), delta);
  ASSERT_TRUE(after.ok);

  const std::vector<NodeId> switches(mirror.net.switches().begin(),
                                     mirror.net.switches().end());
  const std::vector<NodeId> terminals(mirror.net.terminals().begin(),
                                      mirror.net.terminals().end());

  // Hammer lookups from several threads while the repair runs. Every
  // response must match generation 1's or generation 2's reference table
  // at exactly the version it reports — a torn read would mismatch.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> checked{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      std::size_t si = static_cast<std::size_t>(r);
      std::size_t ti = static_cast<std::size_t>(r) * 3;
      while (!stop.load(std::memory_order_relaxed)) {
        const NodeId sw = switches[si % switches.size()];
        const NodeId dst = terminals[ti % terminals.size()];
        const ServiceResponse resp = core.handle(make_lookup(sw, dst));
        if (resp.status == Status::kOk) {
          const RoutingTable& expect =
              resp.snapshot_version == 1 ? before.table : after.table;
          if (resp.snapshot_version > 2 ||
              resp.next_channel != expect.next(sw, dst) ||
              resp.layer != expect.layer(sw, dst)) {
            torn.fetch_add(1);
          }
          checked.fetch_add(1);
        }
        ++si;
        ++ti;
      }
    });
  }

  // Let the readers chew on generation 1 first, then drive the same fault
  // batch + repair through the core mid-hammering.
  while (checked.load() < 200) std::this_thread::yield();
  for (const FaultEvent& e : kills) {
    ASSERT_EQ(core.handle(make_fault(e)).status, Status::kOk);
  }
  ServiceRequest repair;
  repair.kind = MsgKind::kRepair;
  const ServiceResponse repaired = core.handle(repair);
  ASSERT_EQ(repaired.status, Status::kOk);
  EXPECT_EQ(repaired.snapshot_version, 2u);

  // And let them observe generation 2 too before stopping.
  const std::uint64_t seen_before_swap = checked.load();
  while (checked.load() < seen_before_swap + 200) std::this_thread::yield();
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(checked.load(), 0u);
}

// ------------------------------------------------------------- pipe server

/// Client half of a socketpair conversation with a Server::run_pipe loop.
struct PipeHarness {
  obs::Registry reg;
  std::unique_ptr<ServiceCore> core;
  std::thread server_thread;
  int client_fd = -1;
  int exit_code = -1;

  explicit PipeHarness(Topology topo) {
    ServiceCoreOptions options;
    options.metrics = &reg;
    core = std::make_unique<ServiceCore>(std::move(topo), options);
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    client_fd = fds[1];
    const int server_fd = fds[0];
    server_thread = std::thread([this, server_fd] {
      ServerOptions so;
      so.in_fd = server_fd;
      so.out_fd = server_fd;
      so.metrics = &reg;
      Server server(*core, so);
      exit_code = server.run_pipe();
      ::close(server_fd);
    });
  }

  ~PipeHarness() {
    if (client_fd >= 0) ::close(client_fd);
    if (server_thread.joinable()) server_thread.join();
  }

  ServiceResponse call(const ServiceRequest& req) {
    EXPECT_TRUE(write_frame(client_fd, encode_request(req)));
    return read_response();
  }

  ServiceResponse read_response() {
    std::string payload;
    EXPECT_EQ(read_frame(client_fd, payload), FrameResult::kFrame);
    ServiceResponse resp;
    EXPECT_EQ(decode_response(payload, resp), Status::kOk);
    return resp;
  }
};

TEST(ServicePipe, EndToEndDeterministicTablesAndErrors) {
  Topology served = make_kary_ntree(4, 2);
  const Topology reference_topo = served;
  PipeHarness pipe(std::move(served));

  // Route, then spot-check the daemon's forwarding answers against the
  // in-process engine — bitwise, for the full table.
  ServiceRequest route;
  route.kind = MsgKind::kRoute;
  route.request_id = 1;
  const ServiceResponse routed = pipe.call(route);
  ASSERT_EQ(routed.status, Status::kOk);
  EXPECT_EQ(routed.request_id, 1u);

  IncrementalDfsssp engine;
  const RouteResponse direct = engine.route(RouteRequest(reference_topo));
  ASSERT_TRUE(direct.ok);
  for (NodeId sw : reference_topo.net.switches()) {
    for (NodeId dst : reference_topo.net.terminals()) {
      const ServiceResponse resp = pipe.call(make_lookup(sw, dst));
      ASSERT_EQ(resp.status, Status::kOk);
      ASSERT_EQ(resp.next_channel, direct.table.next(sw, dst));
      ASSERT_EQ(resp.layer, direct.table.layer(sw, dst));
    }
  }

  // A garbage frame gets a structured error, and the connection survives.
  ASSERT_TRUE(write_frame(pipe.client_fd, "garbage"));
  EXPECT_EQ(pipe.read_response().status, Status::kErrMalformed);

  // An oversized frame too (without actually shipping a gigabyte: length
  // prefix of kMaxFramePayload + 1, then that many zero bytes).
  const std::string oversized(kMaxFramePayload + 1, '\0');
  ASSERT_TRUE(write_frame(pipe.client_fd, oversized));
  EXPECT_EQ(pipe.read_response().status, Status::kErrOversized);

  // Still serving after both errors.
  ServiceRequest info;
  info.kind = MsgKind::kSnapshotInfo;
  EXPECT_EQ(pipe.call(info).status, Status::kOk);

  // Shutdown: ok, then draining for the next request, then clean exit 0.
  ServiceRequest shutdown;
  shutdown.kind = MsgKind::kShutdown;
  EXPECT_EQ(pipe.call(shutdown).status, Status::kOk);
  EXPECT_EQ(pipe.call(info).status, Status::kErrDraining);

  ::close(pipe.client_fd);
  pipe.client_fd = -1;
  pipe.server_thread.join();
  EXPECT_EQ(pipe.exit_code, 0);
}

TEST(ServicePipe, StatsAndInfoCarryServiceMetrics) {
  PipeHarness pipe(make_kary_ntree(4, 2));

  ServiceRequest route;
  route.kind = MsgKind::kRoute;
  ASSERT_EQ(pipe.call(route).status, Status::kOk);

  ServiceRequest stats;
  stats.kind = MsgKind::kStats;
  const ServiceResponse got = pipe.call(stats);
  ASSERT_EQ(got.status, Status::kOk);
  EXPECT_NE(got.stats_json.find("service/requests"), std::string::npos);
  EXPECT_NE(got.stats_json.find("service/snapshot_swaps"), std::string::npos);
  EXPECT_NE(got.stats_json.find("service/route_ns"), std::string::npos);

  ServiceRequest info;
  info.kind = MsgKind::kSnapshotInfo;
  const ServiceResponse i = pipe.call(info);
  ASSERT_EQ(i.status, Status::kOk);
  EXPECT_EQ(i.engine, "dfsssp");
  EXPECT_EQ(i.snapshot_version, 1u);
  EXPECT_EQ(i.switches, pipe.core->topo().net.num_switches());
  EXPECT_EQ(i.terminals, pipe.core->topo().net.num_terminals());
  // Satellite: process identity rides along on snapshot_info.
  EXPECT_GT(i.uptime_ns, 0u);
  EXPECT_GT(i.peak_rss_bytes, 0u);

  // Satellite: the stats JSON folds in latency quantiles per request kind
  // and the process section.
  const ServiceResponse stats2 = pipe.call(stats);
  ASSERT_EQ(stats2.status, Status::kOk);
  EXPECT_NE(stats2.stats_json.find("\"latency\""), std::string::npos);
  EXPECT_NE(stats2.stats_json.find("p99_ns"), std::string::npos);
  EXPECT_NE(stats2.stats_json.find("peak_rss_bytes"), std::string::npos);
}

// -------------------------------------------------------- flight recorder

TEST(ServiceEnvelope, JournalKindsRoundTripTheWire) {
  ServiceRequest tail;
  tail.kind = MsgKind::kJournalTail;
  tail.request_id = 21;
  tail.journal_from_seq = 17;
  tail.journal_max = 256;
  tail.journal_kind = 5;
  ServiceRequest req_out;
  ASSERT_EQ(decode_request(encode_request(tail), req_out), Status::kOk);
  EXPECT_EQ(req_out.kind, MsgKind::kJournalTail);
  EXPECT_EQ(req_out.journal_from_seq, 17u);
  EXPECT_EQ(req_out.journal_max, 256u);
  EXPECT_EQ(req_out.journal_kind, 5u);

  ServiceResponse records;
  records.kind = MsgKind::kJournalTail;
  records.request_id = 21;
  records.journal_next_seq = 19;
  obs::journal::Record rec;
  rec.seq = 17;
  rec.logical_ts = 9;
  rec.kind = obs::journal::EventKind::kSnapshotSwap;
  rec.version_before = 3;
  rec.version_after = 4;
  rec.paths = 1234;
  rec.table_digest = 0xABCDEF0123456789ULL;
  records.journal_records = {rec, rec};
  records.journal_records[1].seq = 18;
  ServiceResponse resp_out;
  ASSERT_EQ(decode_response(encode_response(records), resp_out), Status::kOk);
  EXPECT_EQ(resp_out.journal_next_seq, 19u);
  ASSERT_EQ(resp_out.journal_records.size(), 2u);
  EXPECT_EQ(resp_out.journal_records[0].seq, 17u);
  EXPECT_EQ(resp_out.journal_records[1].seq, 18u);
  EXPECT_EQ(resp_out.journal_records[0].table_digest, 0xABCDEF0123456789ULL);
  EXPECT_EQ(resp_out.journal_records[0].kind,
            obs::journal::EventKind::kSnapshotSwap);

  ServiceResponse stats;
  stats.kind = MsgKind::kJournalStats;
  stats.journal_stats.next_seq = 7;
  stats.journal_stats.appended = 6;
  stats.journal_stats.dropped = 0;
  stats.journal_stats.size = 6;
  stats.journal_stats.capacity = 8192;
  stats.journal_stats.by_kind[5] = 2;
  stats.journal_stats.disk_bytes = 609;
  stats.journal_stats.sink_open = true;
  stats.journal_stats.sink_path = "/tmp/j.dfjr";
  ASSERT_EQ(decode_response(encode_response(stats), resp_out), Status::kOk);
  EXPECT_EQ(resp_out.journal_stats.next_seq, 7u);
  EXPECT_EQ(resp_out.journal_stats.by_kind[5], 2u);
  EXPECT_EQ(resp_out.journal_stats.disk_bytes, 609u);
  EXPECT_TRUE(resp_out.journal_stats.sink_open);
  EXPECT_EQ(resp_out.journal_stats.sink_path, "/tmp/j.dfjr");
}

/// Route + a fault batch + repair, all through `handle` — the canonical
/// journaled mutation sequence the recorder tests replay below.
void drive_mutations(ServiceCore& core) {
  ServiceRequest route;
  route.kind = MsgKind::kRoute;
  ASSERT_EQ(core.handle(route).status, Status::kOk);

  const FaultSchedule schedule =
      FaultSchedule::random(core.topo().net, {.num_events = 6}, 0xD1CE);
  ASSERT_FALSE(schedule.empty());
  for (const FaultEvent& e : schedule) {
    ASSERT_EQ(core.handle(make_fault(e)).status, Status::kOk);
  }
  ServiceRequest repair;
  repair.kind = MsgKind::kRepair;
  ASSERT_EQ(core.handle(repair).status, Status::kOk);
}

TEST(ServiceJournal, MutationsFlowThroughTheRecorder) {
  obs::Registry reg;
  ServiceCoreOptions options;
  options.metrics = &reg;
  options.journal = true;
  options.journal_config = "kary-tree:4:2";
  ServiceCore core(make_kary_ntree(4, 2), options);
  ASSERT_NE(core.journal(), nullptr);
  drive_mutations(core);

  // journal_stats over the envelope: route, repair, fault events, batch,
  // and two snapshot swaps (route's and the repair's).
  ServiceRequest jstats;
  jstats.kind = MsgKind::kJournalStats;
  const ServiceResponse stats = core.handle(jstats);
  ASSERT_EQ(stats.status, Status::kOk);
  const auto& s = stats.journal_stats;
  EXPECT_EQ(s.by_kind[1], 1u);  // route
  EXPECT_EQ(s.by_kind[2], 1u);  // repair
  EXPECT_EQ(s.by_kind[3], 6u);  // fault events
  EXPECT_EQ(s.by_kind[4], 1u);  // coalesced batch
  EXPECT_EQ(s.by_kind[5], 2u);  // snapshot swaps
  EXPECT_EQ(s.dropped, 0u);
  EXPECT_FALSE(s.sink_open);

  // journal_tail streams the ring in seq order; the lookup path (not a
  // mutation) must not have added records.
  ServiceRequest jtail;
  jtail.kind = MsgKind::kJournalTail;
  jtail.journal_from_seq = 1;
  const ServiceResponse tail = core.handle(jtail);
  ASSERT_EQ(tail.status, Status::kOk);
  ASSERT_EQ(tail.journal_records.size(), s.appended);
  EXPECT_EQ(tail.journal_next_seq, s.appended + 1);
  for (std::size_t i = 0; i < tail.journal_records.size(); ++i) {
    EXPECT_EQ(tail.journal_records[i].seq, i + 1);
  }
  // Filtered tail: only snapshot swaps, with strictly increasing versions.
  jtail.journal_kind = 5;
  const ServiceResponse swaps = core.handle(jtail);
  ASSERT_EQ(swaps.status, Status::kOk);
  ASSERT_EQ(swaps.journal_records.size(), 2u);
  EXPECT_EQ(swaps.journal_records[0].version_after, 1u);
  EXPECT_EQ(swaps.journal_records[1].version_after, 2u);
  EXPECT_NE(swaps.journal_records[0].table_digest,
            swaps.journal_records[1].table_digest);
}

TEST(ServiceJournal, DisabledJournalIsAStructuredError) {
  obs::Registry reg;
  ServiceCoreOptions options;
  options.metrics = &reg;
  ServiceCore core(make_kary_ntree(4, 2), options);
  EXPECT_EQ(core.journal(), nullptr);

  ServiceRequest jtail;
  jtail.kind = MsgKind::kJournalTail;
  EXPECT_EQ(core.handle(jtail).status, Status::kErrBadArgument);
  ServiceRequest jstats;
  jstats.kind = MsgKind::kJournalStats;
  EXPECT_EQ(core.handle(jstats).status, Status::kErrBadArgument);
}

TEST(ServiceJournal, ReplayReproducesTheJournalBitExactly) {
  const std::string path =
      std::string(::testing::TempDir()) + "service_replay.dfjr";
  std::remove(path.c_str());

  {
    obs::Registry reg;
    ServiceCoreOptions options;
    options.metrics = &reg;
    options.journal = true;
    options.journal_path = path;
    options.journal_config = "kary-tree:4:2";
    ServiceCore core(make_kary_ntree(4, 2), options);
    drive_mutations(core);
    ASSERT_TRUE(core.journal()->sink_ok()) << core.journal()->error();
  }  // core destroyed: the segment is closed and complete

  obs::journal::JournalFile file;
  std::string error;
  ASSERT_TRUE(obs::journal::read_journal(path, file, error)) << error;
  EXPECT_EQ(file.topo_config, "kary-tree:4:2");
  EXPECT_EQ(file.engine, "dfsssp");
  ASSERT_GE(file.records.size(), 10u);  // 1+6+1 triggers + batch + 2 swaps

  // A fresh core replays the recorded mutations and must emit the very
  // same records — digests, versions, layer counts, seq numbering.
  const auto target = make_inprocess_target(file);
  const ReplayResult result = replay_journal(file, *target, true);
  EXPECT_TRUE(result.error.empty()) << result.error;
  for (const ReplayMismatch& m : result.mismatches) {
    ADD_FAILURE() << "ts=" << m.logical_ts << ": " << m.detail;
  }
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.transactions, 8u);  // route + 6 faults + repair
  EXPECT_EQ(result.records_checked, file.records.size());
  EXPECT_EQ(result.generations, 2u);
  std::remove(path.c_str());
}

TEST(ServiceJournal, ReplayDetectsTamperedRecords) {
  const std::string path =
      std::string(::testing::TempDir()) + "service_tampered.dfjr";
  std::remove(path.c_str());
  {
    obs::Registry reg;
    ServiceCoreOptions options;
    options.metrics = &reg;
    options.journal = true;
    options.journal_path = path;
    options.journal_config = "kary-tree:4:2";
    ServiceCore core(make_kary_ntree(4, 2), options);
    drive_mutations(core);
  }

  obs::journal::JournalFile file;
  std::string error;
  ASSERT_TRUE(obs::journal::read_journal(path, file, error)) << error;

  // Corrupt a recorded digest in memory: verification must flag exactly
  // that transaction instead of passing or erroring out.
  for (obs::journal::Record& r : file.records) {
    if (r.kind == obs::journal::EventKind::kSnapshotSwap) {
      r.table_digest ^= 1;
      break;
    }
  }
  const auto target = make_inprocess_target(file);
  const ReplayResult result = replay_journal(file, *target, true);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.mismatches.empty());
  EXPECT_NE(result.mismatches.front().detail.find("table_digest"),
            std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dfsssp::service
