// Routing service: wire envelope, RCU snapshots, ServiceCore semantics,
// and the pipe-mode end-to-end daemon conversation.
//
// The contracts under test (ISSUE: routing-as-a-service):
//   * every envelope kind round-trips the wire encoding bit-exactly, and
//     truncated/garbage/oversized/unversioned frames come back as
//     structured errors, never closed connections;
//   * the daemon's tables are bitwise identical to the in-process engine's
//     — serving through the envelope adds no routing drift;
//   * a lookup racing a repair sees the pre-repair or post-repair
//     snapshot, never a torn mix;
//   * drain: after shutdown, later requests get kErrDraining and the
//     serving loop exits cleanly.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "fault/churn.hpp"
#include "fault/incremental.hpp"
#include "fault/schedule.hpp"
#include "obs/metrics.hpp"
#include "service/core.hpp"
#include "service/envelope.hpp"
#include "service/frame.hpp"
#include "service/server.hpp"
#include "topology/generators.hpp"

namespace dfsssp::service {
namespace {

// ---------------------------------------------------------------- envelope

TEST(ServiceEnvelope, RequestRoundTripsEveryKind) {
  ServiceRequest route;
  route.kind = MsgKind::kRoute;
  route.request_id = 42;
  route.max_layers = 4;

  ServiceRequest fault;
  fault.kind = MsgKind::kFaultEvent;
  fault.request_id = 7;
  fault.fault_kind = static_cast<std::uint8_t>(FaultKind::kSwitchDown);
  fault.channel = 123;
  fault.sw = 9;

  ServiceRequest lookup;
  lookup.kind = MsgKind::kLookup;
  lookup.request_id = 0xFFFF'FFFF'FFFF'FFFFull;
  lookup.src_switch = 3;
  lookup.dst_terminal = 200;

  for (const ServiceRequest& req : {route, fault, lookup}) {
    ServiceRequest out;
    ASSERT_EQ(decode_request(encode_request(req), out), Status::kOk);
    EXPECT_EQ(out.kind, req.kind);
    EXPECT_EQ(out.request_id, req.request_id);
    EXPECT_EQ(out.max_layers, req.kind == MsgKind::kRoute ? req.max_layers
                                                          : Layer{0});
  }
  ServiceRequest out;
  ASSERT_EQ(decode_request(encode_request(fault), out), Status::kOk);
  EXPECT_EQ(out.fault_kind, fault.fault_kind);
  EXPECT_EQ(out.channel, fault.channel);
  EXPECT_EQ(out.sw, fault.sw);
  ASSERT_EQ(decode_request(encode_request(lookup), out), Status::kOk);
  EXPECT_EQ(out.src_switch, lookup.src_switch);
  EXPECT_EQ(out.dst_terminal, lookup.dst_terminal);

  for (MsgKind kind : {MsgKind::kRepair, MsgKind::kStats,
                       MsgKind::kSnapshotInfo, MsgKind::kShutdown}) {
    ServiceRequest req;
    req.kind = kind;
    req.request_id = 5;
    ASSERT_EQ(decode_request(encode_request(req), out), Status::kOk);
    EXPECT_EQ(out.kind, kind);
    EXPECT_EQ(out.request_id, 5u);
  }
}

TEST(ServiceEnvelope, ResponseRoundTripsBodyFields) {
  ServiceResponse repair;
  repair.kind = MsgKind::kRepair;
  repair.request_id = 11;
  repair.snapshot_version = 3;
  repair.layers = 2;
  repair.paths = 64436;
  repair.events_coalesced = 5;
  repair.incremental = true;
  repair.destinations_rerouted = 96;
  repair.paths_migrated = 6816;
  repair.elapsed_ns = 4'700'000;

  ServiceResponse out;
  ASSERT_EQ(decode_response(encode_response(repair), out), Status::kOk);
  EXPECT_EQ(out.snapshot_version, 3u);
  EXPECT_EQ(out.layers, 2);
  EXPECT_EQ(out.paths, 64436u);
  EXPECT_EQ(out.events_coalesced, 5u);
  EXPECT_TRUE(out.incremental);
  EXPECT_EQ(out.destinations_rerouted, 96u);
  EXPECT_EQ(out.paths_migrated, 6816u);
  EXPECT_EQ(out.elapsed_ns, 4'700'000u);

  ServiceResponse info;
  info.kind = MsgKind::kSnapshotInfo;
  info.snapshot_version = 9;
  info.snapshot_swaps = 12;
  info.layers = 3;
  info.paths = 99;
  info.switches = 90;
  info.terminals = 724;
  info.pending_events = 2;
  info.engine = "dfsssp";
  info.topology = "deimos";
  ASSERT_EQ(decode_response(encode_response(info), out), Status::kOk);
  EXPECT_EQ(out.snapshot_swaps, 12u);
  EXPECT_EQ(out.switches, 90u);
  EXPECT_EQ(out.terminals, 724u);
  EXPECT_EQ(out.engine, "dfsssp");
  EXPECT_EQ(out.topology, "deimos");

  ServiceResponse err = error_response(ServiceRequest{}, Status::kErrDraining,
                                       "daemon is draining");
  ASSERT_EQ(decode_response(encode_response(err), out), Status::kOk);
  EXPECT_EQ(out.status, Status::kErrDraining);
  EXPECT_EQ(out.error, "daemon is draining");
}

TEST(ServiceEnvelope, RejectsTruncatedAndGarbageFrames) {
  ServiceRequest req;
  req.kind = MsgKind::kLookup;
  req.request_id = 77;
  req.src_switch = 1;
  req.dst_terminal = 2;
  const std::string good = encode_request(req);

  ServiceRequest out;
  // Every proper prefix of a valid frame is malformed, never a crash.
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_EQ(decode_request(std::string_view(good).substr(0, cut), out),
              Status::kErrMalformed)
        << "prefix length " << cut;
  }
  // Trailing garbage is tolerated (forward compatibility within a version).
  EXPECT_EQ(decode_request(good + "extra-bytes", out), Status::kOk);
  EXPECT_EQ(out.request_id, 77u);

  // Pure garbage decodes as malformed / unknown kind / bad version —
  // structured errors all.
  const std::string garbage = "\xDE\xAD\xBE\xEF\xDE\xAD\xBE\xEF nonsense";
  EXPECT_NE(decode_request(garbage, out), Status::kOk);

  std::string bad_version = good;
  bad_version[0] = 99;  // version word
  EXPECT_EQ(decode_request(bad_version, out), Status::kErrUnsupportedVersion);

  std::string bad_kind = good;
  bad_kind[2] = 0x7F;  // kind word
  EXPECT_EQ(decode_request(bad_kind, out), Status::kErrUnknownKind);
  // The header still decoded: the server can echo the request id.
  EXPECT_EQ(out.request_id, 77u);
}

// ---------------------------------------------------------------- snapshot

TEST(SnapshotSlot, RcuReadersKeepTheirGeneration) {
  SnapshotSlot slot;
  EXPECT_EQ(slot.load(), nullptr);
  EXPECT_EQ(slot.version(), 0u);

  auto first = std::make_shared<ForwardingSnapshot>();
  first->paths = 1;
  EXPECT_EQ(slot.publish(std::move(first)), 1u);
  const std::shared_ptr<const ForwardingSnapshot> held = slot.load();
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->version, 1u);

  auto second = std::make_shared<ForwardingSnapshot>();
  second->paths = 2;
  EXPECT_EQ(slot.publish(std::move(second)), 2u);

  // The old generation stays fully readable for as long as it is held.
  EXPECT_EQ(held->version, 1u);
  EXPECT_EQ(held->paths, 1u);
  EXPECT_EQ(slot.load()->version, 2u);
  EXPECT_EQ(slot.swaps(), 2u);
}

// ------------------------------------------------------------ service core

ServiceRequest make_lookup(NodeId src, NodeId dst) {
  ServiceRequest req;
  req.kind = MsgKind::kLookup;
  req.src_switch = src;
  req.dst_terminal = dst;
  return req;
}

ServiceRequest make_fault(const FaultEvent& e) {
  ServiceRequest req;
  req.kind = MsgKind::kFaultEvent;
  req.fault_kind = static_cast<std::uint8_t>(e.kind);
  req.channel = e.channel;
  req.sw = e.sw;
  return req;
}

void expect_tables_identical(const Network& net, const RoutingTable& a,
                             const RoutingTable& b) {
  ASSERT_EQ(a.num_layers(), b.num_layers());
  for (NodeId sw : net.switches()) {
    for (NodeId dst : net.terminals()) {
      ASSERT_EQ(a.next(sw, dst), b.next(sw, dst))
          << "next mismatch at sw " << sw << " dst " << dst;
      ASSERT_EQ(a.layer(sw, dst), b.layer(sw, dst))
          << "layer mismatch at sw " << sw << " dst " << dst;
    }
  }
}

TEST(ServiceCore, TablesBitwiseIdenticalToInProcessEngine) {
  obs::Registry reg;
  Topology served = make_kary_ntree(4, 2);
  const Topology reference_topo = served;  // identical twin for the engine

  ServiceCoreOptions options;
  options.metrics = &reg;
  ServiceCore core(std::move(served), options);

  ServiceRequest route;
  route.kind = MsgKind::kRoute;
  const ServiceResponse routed = core.handle(route);
  ASSERT_EQ(routed.status, Status::kOk);
  EXPECT_EQ(routed.snapshot_version, 1u);

  IncrementalDfsssp engine;
  const RouteResponse direct = engine.route(RouteRequest(reference_topo));
  ASSERT_TRUE(direct.ok);

  const auto snap = core.snapshot();
  ASSERT_NE(snap, nullptr);
  expect_tables_identical(reference_topo.net, snap->table, direct.table);
  EXPECT_EQ(snap->paths, direct.stats.paths);
  EXPECT_EQ(snap->layers_used, direct.stats.layers_used);
}

TEST(ServiceCore, BatchedRepairMatchesInProcessChurn) {
  obs::Registry reg;
  Topology served = make_kary_ntree(4, 2);
  Topology mirror = served;

  ServiceCoreOptions options;
  options.metrics = &reg;
  ServiceCore core(std::move(served), options);
  ASSERT_EQ(core.handle([] {
                  ServiceRequest r;
                  r.kind = MsgKind::kRoute;
                  return r;
                }())
                .status,
            Status::kOk);

  IncrementalDfsssp engine;
  ASSERT_TRUE(engine.route(RouteRequest(mirror)).ok);
  ChurnEngine churn(mirror);

  const FaultSchedule schedule =
      FaultSchedule::random(mirror.net, {.num_events = 12}, 0xFEED);
  ASSERT_FALSE(schedule.empty());

  // Feed all events to the daemon, then one repair coalesces them; mirror
  // the exact same batch in-process.
  for (const FaultEvent& e : schedule) {
    ASSERT_EQ(core.handle(make_fault(e)).status, Status::kOk);
  }
  ServiceRequest repair;
  repair.kind = MsgKind::kRepair;
  const ServiceResponse repaired = core.handle(repair);
  ASSERT_EQ(repaired.status, Status::kOk);
  EXPECT_EQ(repaired.events_coalesced, schedule.size());

  const ChurnDelta delta = churn.apply_all(
      std::span<const FaultEvent>(schedule.events().data(), schedule.size()));
  const RouteResponse direct = engine.repair(RouteRequest(mirror), delta);
  ASSERT_TRUE(direct.ok);

  const auto snap = core.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version, repaired.snapshot_version);
  expect_tables_identical(mirror.net, snap->table, direct.table);
}

TEST(ServiceCore, LookupBeforeRouteAndBadIdsAreStructuredErrors) {
  obs::Registry reg;
  ServiceCoreOptions options;
  options.metrics = &reg;
  ServiceCore core(make_kary_ntree(4, 2), options);

  EXPECT_EQ(core.handle(make_lookup(0, 1)).status, Status::kErrNotRouted);
  ServiceRequest repair;
  repair.kind = MsgKind::kRepair;
  EXPECT_EQ(core.handle(repair).status, Status::kErrNotRouted);

  ServiceRequest route;
  route.kind = MsgKind::kRoute;
  ASSERT_EQ(core.handle(route).status, Status::kOk);

  const Network& net = core.topo().net;
  const NodeId a_switch = net.switches().front();
  const NodeId a_terminal = net.terminals().front();
  EXPECT_EQ(core.handle(make_lookup(a_terminal, a_terminal)).status,
            Status::kErrBadArgument);
  EXPECT_EQ(core.handle(make_lookup(a_switch, a_switch)).status,
            Status::kErrBadArgument);
  EXPECT_EQ(core.handle(make_lookup(1u << 30, a_terminal)).status,
            Status::kErrBadArgument);
  EXPECT_EQ(core.handle(make_lookup(a_switch, a_terminal)).status,
            Status::kOk);

  // A fault event on a terminal injection/ejection channel is rejected at
  // enqueue time — it would otherwise throw inside the next repair's
  // ChurnEngine batch and take the daemon down.
  FaultEvent bad;
  bad.kind = FaultKind::kLinkDown;
  bad.channel = net.injection_channel(a_terminal);
  EXPECT_EQ(core.handle(make_fault(bad)).status, Status::kErrBadArgument);
  bad.channel = 1u << 30;
  EXPECT_EQ(core.handle(make_fault(bad)).status, Status::kErrBadArgument);
}

TEST(ServiceCore, LookupDuringRepairSeesOldOrNewSnapshotNeverTorn) {
  obs::Registry reg;
  Topology served = make_kary_ntree(4, 2);
  Topology mirror = served;

  ServiceCoreOptions options;
  options.metrics = &reg;
  ServiceCore core(std::move(served), options);
  ServiceRequest route;
  route.kind = MsgKind::kRoute;
  ASSERT_EQ(core.handle(route).status, Status::kOk);

  // Reference tables for generation 1 (pre-repair) and generation 2
  // (post-repair), computed in-process on the identical twin.
  IncrementalDfsssp engine;
  const RouteResponse before = engine.route(RouteRequest(mirror));
  ASSERT_TRUE(before.ok);
  ChurnEngine churn(mirror);
  const FaultSchedule kills =
      FaultSchedule::link_kills(mirror.net, 3, 0xBEEF);
  ASSERT_FALSE(kills.empty());
  const ChurnDelta delta = churn.apply_all(std::span<const FaultEvent>(
      kills.events().data(), kills.size()));
  const RouteResponse after = engine.repair(RouteRequest(mirror), delta);
  ASSERT_TRUE(after.ok);

  const std::vector<NodeId> switches(mirror.net.switches().begin(),
                                     mirror.net.switches().end());
  const std::vector<NodeId> terminals(mirror.net.terminals().begin(),
                                      mirror.net.terminals().end());

  // Hammer lookups from several threads while the repair runs. Every
  // response must match generation 1's or generation 2's reference table
  // at exactly the version it reports — a torn read would mismatch.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> checked{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      std::size_t si = static_cast<std::size_t>(r);
      std::size_t ti = static_cast<std::size_t>(r) * 3;
      while (!stop.load(std::memory_order_relaxed)) {
        const NodeId sw = switches[si % switches.size()];
        const NodeId dst = terminals[ti % terminals.size()];
        const ServiceResponse resp = core.handle(make_lookup(sw, dst));
        if (resp.status == Status::kOk) {
          const RoutingTable& expect =
              resp.snapshot_version == 1 ? before.table : after.table;
          if (resp.snapshot_version > 2 ||
              resp.next_channel != expect.next(sw, dst) ||
              resp.layer != expect.layer(sw, dst)) {
            torn.fetch_add(1);
          }
          checked.fetch_add(1);
        }
        ++si;
        ++ti;
      }
    });
  }

  // Let the readers chew on generation 1 first, then drive the same fault
  // batch + repair through the core mid-hammering.
  while (checked.load() < 200) std::this_thread::yield();
  for (const FaultEvent& e : kills) {
    ASSERT_EQ(core.handle(make_fault(e)).status, Status::kOk);
  }
  ServiceRequest repair;
  repair.kind = MsgKind::kRepair;
  const ServiceResponse repaired = core.handle(repair);
  ASSERT_EQ(repaired.status, Status::kOk);
  EXPECT_EQ(repaired.snapshot_version, 2u);

  // And let them observe generation 2 too before stopping.
  const std::uint64_t seen_before_swap = checked.load();
  while (checked.load() < seen_before_swap + 200) std::this_thread::yield();
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(checked.load(), 0u);
}

// ------------------------------------------------------------- pipe server

/// Client half of a socketpair conversation with a Server::run_pipe loop.
struct PipeHarness {
  obs::Registry reg;
  std::unique_ptr<ServiceCore> core;
  std::thread server_thread;
  int client_fd = -1;
  int exit_code = -1;

  explicit PipeHarness(Topology topo) {
    ServiceCoreOptions options;
    options.metrics = &reg;
    core = std::make_unique<ServiceCore>(std::move(topo), options);
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    client_fd = fds[1];
    const int server_fd = fds[0];
    server_thread = std::thread([this, server_fd] {
      ServerOptions so;
      so.in_fd = server_fd;
      so.out_fd = server_fd;
      so.metrics = &reg;
      Server server(*core, so);
      exit_code = server.run_pipe();
      ::close(server_fd);
    });
  }

  ~PipeHarness() {
    if (client_fd >= 0) ::close(client_fd);
    if (server_thread.joinable()) server_thread.join();
  }

  ServiceResponse call(const ServiceRequest& req) {
    EXPECT_TRUE(write_frame(client_fd, encode_request(req)));
    return read_response();
  }

  ServiceResponse read_response() {
    std::string payload;
    EXPECT_EQ(read_frame(client_fd, payload), FrameResult::kFrame);
    ServiceResponse resp;
    EXPECT_EQ(decode_response(payload, resp), Status::kOk);
    return resp;
  }
};

TEST(ServicePipe, EndToEndDeterministicTablesAndErrors) {
  Topology served = make_kary_ntree(4, 2);
  const Topology reference_topo = served;
  PipeHarness pipe(std::move(served));

  // Route, then spot-check the daemon's forwarding answers against the
  // in-process engine — bitwise, for the full table.
  ServiceRequest route;
  route.kind = MsgKind::kRoute;
  route.request_id = 1;
  const ServiceResponse routed = pipe.call(route);
  ASSERT_EQ(routed.status, Status::kOk);
  EXPECT_EQ(routed.request_id, 1u);

  IncrementalDfsssp engine;
  const RouteResponse direct = engine.route(RouteRequest(reference_topo));
  ASSERT_TRUE(direct.ok);
  for (NodeId sw : reference_topo.net.switches()) {
    for (NodeId dst : reference_topo.net.terminals()) {
      const ServiceResponse resp = pipe.call(make_lookup(sw, dst));
      ASSERT_EQ(resp.status, Status::kOk);
      ASSERT_EQ(resp.next_channel, direct.table.next(sw, dst));
      ASSERT_EQ(resp.layer, direct.table.layer(sw, dst));
    }
  }

  // A garbage frame gets a structured error, and the connection survives.
  ASSERT_TRUE(write_frame(pipe.client_fd, "garbage"));
  EXPECT_EQ(pipe.read_response().status, Status::kErrMalformed);

  // An oversized frame too (without actually shipping a gigabyte: length
  // prefix of kMaxFramePayload + 1, then that many zero bytes).
  const std::string oversized(kMaxFramePayload + 1, '\0');
  ASSERT_TRUE(write_frame(pipe.client_fd, oversized));
  EXPECT_EQ(pipe.read_response().status, Status::kErrOversized);

  // Still serving after both errors.
  ServiceRequest info;
  info.kind = MsgKind::kSnapshotInfo;
  EXPECT_EQ(pipe.call(info).status, Status::kOk);

  // Shutdown: ok, then draining for the next request, then clean exit 0.
  ServiceRequest shutdown;
  shutdown.kind = MsgKind::kShutdown;
  EXPECT_EQ(pipe.call(shutdown).status, Status::kOk);
  EXPECT_EQ(pipe.call(info).status, Status::kErrDraining);

  ::close(pipe.client_fd);
  pipe.client_fd = -1;
  pipe.server_thread.join();
  EXPECT_EQ(pipe.exit_code, 0);
}

TEST(ServicePipe, StatsAndInfoCarryServiceMetrics) {
  PipeHarness pipe(make_kary_ntree(4, 2));

  ServiceRequest route;
  route.kind = MsgKind::kRoute;
  ASSERT_EQ(pipe.call(route).status, Status::kOk);

  ServiceRequest stats;
  stats.kind = MsgKind::kStats;
  const ServiceResponse got = pipe.call(stats);
  ASSERT_EQ(got.status, Status::kOk);
  EXPECT_NE(got.stats_json.find("service/requests"), std::string::npos);
  EXPECT_NE(got.stats_json.find("service/snapshot_swaps"), std::string::npos);
  EXPECT_NE(got.stats_json.find("service/route_ns"), std::string::npos);

  ServiceRequest info;
  info.kind = MsgKind::kSnapshotInfo;
  const ServiceResponse i = pipe.call(info);
  ASSERT_EQ(i.status, Status::kOk);
  EXPECT_EQ(i.engine, "dfsssp");
  EXPECT_EQ(i.snapshot_version, 1u);
  EXPECT_EQ(i.switches, pipe.core->topo().net.num_switches());
  EXPECT_EQ(i.terminals, pipe.core->topo().net.num_terminals());
}

}  // namespace
}  // namespace dfsssp::service
