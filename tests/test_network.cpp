#include "topology/network.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace dfsssp {
namespace {

TEST(Network, SwitchAndTerminalBookkeeping) {
  Network net;
  NodeId s0 = net.add_switch("alpha");
  NodeId s1 = net.add_switch();
  NodeId t0 = net.add_terminal(s0);
  NodeId t1 = net.add_terminal(s0);
  NodeId t2 = net.add_terminal(s1);
  net.add_link(s0, s1);
  net.freeze();

  EXPECT_EQ(net.num_switches(), 2U);
  EXPECT_EQ(net.num_terminals(), 3U);
  EXPECT_TRUE(net.is_switch(s0));
  EXPECT_TRUE(net.is_terminal(t0));
  EXPECT_EQ(net.switch_of(t0), s0);
  EXPECT_EQ(net.switch_of(t2), s1);
  EXPECT_EQ(net.terminals_on(s0), 2U);
  EXPECT_EQ(net.terminals_on(s1), 1U);
  EXPECT_EQ(net.node_name(s0), "alpha");
  (void)t1;
  net.validate();
}

TEST(Network, ChannelsArePairedReverses) {
  Network net;
  NodeId a = net.add_switch();
  NodeId b = net.add_switch();
  ChannelId ab = net.add_link(a, b);
  net.freeze();
  const Channel& fwd = net.channel(ab);
  const Channel& rev = net.channel(fwd.reverse);
  EXPECT_EQ(fwd.src, a);
  EXPECT_EQ(fwd.dst, b);
  EXPECT_EQ(rev.src, b);
  EXPECT_EQ(rev.dst, a);
  EXPECT_EQ(rev.reverse, ab);
}

TEST(Network, InjectionAndEjection) {
  Network net;
  NodeId s = net.add_switch();
  NodeId t = net.add_terminal(s);
  net.freeze();
  ChannelId inj = net.injection_channel(t);
  ChannelId ej = net.ejection_channel(t);
  EXPECT_EQ(net.channel(inj).src, t);
  EXPECT_EQ(net.channel(inj).dst, s);
  EXPECT_EQ(net.channel(ej).src, s);
  EXPECT_EQ(net.channel(ej).dst, t);
  EXPECT_FALSE(net.is_switch_channel(inj));
}

TEST(Network, OutSwitchChannelsSkipTerminals) {
  Network net;
  NodeId a = net.add_switch();
  NodeId b = net.add_switch();
  net.add_terminal(a);
  net.add_terminal(a);
  net.add_link(a, b);
  net.freeze();
  EXPECT_EQ(net.out_channels(a).size(), 3U);       // 2 ejection + 1 link
  EXPECT_EQ(net.out_switch_channels(a).size(), 1U);
  EXPECT_EQ(net.switch_degree(a), 1U);
}

TEST(Network, ParallelLinksAllowed) {
  Network net;
  NodeId a = net.add_switch();
  NodeId b = net.add_switch();
  net.add_link(a, b);
  net.add_link(a, b);
  net.freeze();
  EXPECT_EQ(net.out_switch_channels(a).size(), 2U);
  net.validate();
}

TEST(Network, MutationAfterFreezeThrows) {
  Network net;
  NodeId a = net.add_switch();
  net.add_switch();
  net.freeze();
  EXPECT_THROW(net.add_switch(), std::logic_error);
  EXPECT_THROW(net.add_terminal(a), std::logic_error);
}

TEST(Network, RejectsBadArguments) {
  Network net;
  NodeId a = net.add_switch();
  NodeId t = net.add_terminal(a);
  EXPECT_THROW(net.add_link(a, a), std::invalid_argument);
  EXPECT_THROW(net.add_link(a, t), std::invalid_argument);
  EXPECT_THROW(net.add_terminal(t), std::invalid_argument);
}

TEST(Network, ConnectedDetection) {
  Network net;
  NodeId a = net.add_switch();
  NodeId b = net.add_switch();
  NodeId c = net.add_switch();
  net.add_link(a, b);
  net.freeze();
  EXPECT_FALSE(net.connected());  // c is isolated
  (void)c;

  Network net2;
  NodeId x = net2.add_switch();
  NodeId y = net2.add_switch();
  net2.add_link(x, y);
  net2.add_terminal(x);
  net2.freeze();
  EXPECT_TRUE(net2.connected());
}

TEST(Network, NameSideTable) {
  Network net;
  NodeId s0 = net.add_switch("alpha");
  NodeId s1 = net.add_switch();
  NodeId t0 = net.add_terminal(s1);
  net.freeze();
  EXPECT_TRUE(net.has_custom_name(s0));
  EXPECT_FALSE(net.has_custom_name(s1));
  EXPECT_EQ(net.node_name(s0), "alpha");
  EXPECT_EQ(net.node_name(s1), "sw1");  // synthesized default
  EXPECT_EQ(net.node_name(t0), "t0");
  net.set_node_name(s1, "beta");
  EXPECT_EQ(net.node_name(s1), "beta");
  net.set_node_name(s1, "");  // erase -> back to default
  EXPECT_EQ(net.node_name(s1), "sw1");
  EXPECT_THROW(net.set_node_name(99, "x"), std::invalid_argument);
}

TEST(Network, MemoryFootprintGrowsWithStructure) {
  Network small;
  NodeId a = small.add_switch();
  small.add_terminal(a);
  small.freeze();

  Network big;
  std::vector<NodeId> sws;
  for (int i = 0; i < 32; ++i) sws.push_back(big.add_switch());
  for (int i = 0; i < 31; ++i) big.add_link(sws[i], sws[i + 1]);
  for (NodeId sw : sws) big.add_terminal(sw);
  big.freeze();

  EXPECT_GT(small.memory_footprint(), 0U);
  EXPECT_GT(big.memory_footprint(), small.memory_footprint());

  // Deterministic: same construction sequence, same figure.
  Network big2;
  std::vector<NodeId> sws2;
  for (int i = 0; i < 32; ++i) sws2.push_back(big2.add_switch());
  for (int i = 0; i < 31; ++i) big2.add_link(sws2[i], sws2[i + 1]);
  for (NodeId sw : sws2) big2.add_terminal(sw);
  big2.freeze();
  EXPECT_EQ(big.memory_footprint(), big2.memory_footprint());
}

TEST(Network, TypeIndexIsDense) {
  Network net;
  NodeId s0 = net.add_switch();
  NodeId t0 = net.add_terminal(s0);
  NodeId s1 = net.add_switch();
  NodeId t1 = net.add_terminal(s1);
  net.freeze();
  EXPECT_EQ(net.node(s0).type_index, 0U);
  EXPECT_EQ(net.node(s1).type_index, 1U);
  EXPECT_EQ(net.node(t0).type_index, 0U);
  EXPECT_EQ(net.node(t1).type_index, 1U);
  EXPECT_EQ(net.switch_by_index(1), s1);
  EXPECT_EQ(net.terminal_by_index(1), t1);
}

}  // namespace
}  // namespace dfsssp
