#include "sim/flitsim.hpp"

#include <gtest/gtest.h>

#include "routing/dfsssp.hpp"
#include "routing/sssp.hpp"
#include "routing/updown.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

/// Figure 2's traffic: every node sends to the node two hops clockwise.
Flows two_hop_shift(const Network& net) {
  Flows flows;
  const std::uint32_t n = static_cast<std::uint32_t>(net.num_terminals());
  for (std::uint32_t i = 0; i < n; ++i) {
    flows.emplace_back(net.terminal_by_index(i),
                       net.terminal_by_index((i + 2) % n));
  }
  return flows;
}

TEST(FlitSim, SsspDeadlocksOnFigure2Ring) {
  // The paper's Figure 2: 5-switch ring, 2-hop clockwise shift, SSSP routes
  // everything clockwise; with finite buffers the network must wedge.
  Topology topo = make_ring(5, 1);
  RouteResponse out = SsspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  Rng rng(1);
  FlitSimOptions opts;
  opts.buffer_slots = 1;
  opts.packets_per_flow = 16;
  FlitSimResult r = simulate_flit_level(topo.net, out.table, two_hop_shift(topo.net),
                                        opts, rng);
  EXPECT_TRUE(r.deadlocked);
  EXPECT_FALSE(r.drained);
  EXPECT_GT(r.in_flight_at_end, 0U);
}

TEST(FlitSim, DfssspDrainsTheSameTraffic) {
  Topology topo = make_ring(5, 1);
  RouteResponse out = DfssspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok) << out.error;
  Rng rng(1);
  FlitSimOptions opts;
  opts.buffer_slots = 1;
  opts.packets_per_flow = 16;
  FlitSimResult r = simulate_flit_level(topo.net, out.table, two_hop_shift(topo.net),
                                        opts, rng);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.delivered, 5U * 16U);
}

TEST(FlitSim, UpDownDrainsRingTraffic) {
  Topology topo = make_ring(6, 1);
  RouteResponse out = UpDownRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  Rng rng(2);
  FlitSimOptions opts;
  opts.buffer_slots = 1;
  opts.packets_per_flow = 8;
  FlitSimResult r = simulate_flit_level(topo.net, out.table, two_hop_shift(topo.net),
                                        opts, rng);
  EXPECT_TRUE(r.drained);
}

TEST(FlitSim, BiggerBuffersCanHideTheDeadlockBriefly) {
  // With buffers larger than the traffic, the Figure 2 cycle never fills:
  // packet counts below the buffer capacity drain even under SSSP.
  Topology topo = make_ring(5, 1);
  RouteResponse out = SsspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  Rng rng(3);
  FlitSimOptions opts;
  opts.buffer_slots = 64;
  opts.packets_per_flow = 2;
  FlitSimResult r = simulate_flit_level(topo.net, out.table, two_hop_shift(topo.net),
                                        opts, rng);
  EXPECT_TRUE(r.drained);
}

TEST(FlitSim, DeliversPointToPoint) {
  Topology topo = make_kary_ntree(2, 2);
  RouteResponse out = DfssspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  Rng rng(4);
  Flows flows{{topo.net.terminal_by_index(0), topo.net.terminal_by_index(3)}};
  FlitSimOptions opts;
  opts.packets_per_flow = 10;
  FlitSimResult r = simulate_flit_level(topo.net, out.table, flows, opts, rng);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.delivered, 10U);
  // 10 packets over >= 3 hops need more than 10 cycles (1 packet/cycle/link).
  EXPECT_GT(r.cycles, 10U);
}

TEST(FlitSim, IntraSwitchFlowsAndSelfFlowsHandled) {
  Topology topo = make_single_switch(4);
  RouteResponse out = DfssspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  Rng rng(5);
  Flows flows{{topo.net.terminal_by_index(0), topo.net.terminal_by_index(1)},
              {topo.net.terminal_by_index(2), topo.net.terminal_by_index(2)}};
  FlitSimOptions opts;
  opts.packets_per_flow = 4;
  FlitSimResult r = simulate_flit_level(topo.net, out.table, flows, opts, rng);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.delivered, 4U);  // the self-flow is skipped
}

}  // namespace
}  // namespace dfsssp
