// Fault churn: seeded event streams, in-place mutation, incremental repair.
//
// The contract under test (ISSUE: fault-churn subsystem): after every
// applied churn event, the incrementally repaired routing must (a) reach
// every alive destination from every alive switch over alive channels,
// (b) carry a certificate the independent checker accepts, and (c) be
// bitwise identical across thread counts. Plus the bookkeeping contracts:
// RoutingStats.paths and the fault/* metrics never go stale.
#include <gtest/gtest.h>

#include <span>
#include <sstream>

#include "analysis/certificate.hpp"
#include "fault/churn.hpp"
#include "fault/incremental.hpp"
#include "fault/schedule.hpp"
#include "obs/metrics.hpp"
#include "routing/dump.hpp"
#include "routing/verify.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

std::uint32_t alive_terminals(const Network& net) {
  std::uint32_t alive = 0;
  for (NodeId t : net.terminals()) alive += net.terminal_alive(t) ? 1 : 0;
  return alive;
}

/// Every (alive switch, alive destination) pair must walk to the
/// destination over alive channels only.
void expect_reachable(const Network& net, const RoutingTable& table) {
  std::vector<ChannelId> path;
  for (NodeId d : net.terminals()) {
    if (!net.terminal_alive(d)) continue;
    for (NodeId sw : net.switches()) {
      if (!net.switch_up(sw)) continue;
      ASSERT_TRUE(table.extract_path(net, sw, d, path))
          << "broken walk " << net.node_name(sw) << " -> "
          << net.node_name(d);
      for (ChannelId c : path) {
        ASSERT_TRUE(net.channel_alive(c))
            << "path " << net.node_name(sw) << " -> " << net.node_name(d)
            << " crosses dead channel " << c;
      }
    }
  }
}

TEST(FaultSchedule, DeterministicAndConnectivityPreserving) {
  Topology topo = make_kary_ntree(4, 2);
  FaultScheduleOptions opts;
  opts.num_events = 50;
  const FaultSchedule a = FaultSchedule::random(topo.net, opts, 7);
  const FaultSchedule b = FaultSchedule::random(topo.net, opts, 7);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].channel, b[i].channel);
    EXPECT_EQ(a[i].sw, b[i].sw);
  }
  // Applying the whole stream never disconnects the alive switches.
  ChurnEngine churn(topo);
  std::uint32_t applied = 0;
  for (const FaultEvent& ev : a) {
    const ChurnDelta delta = churn.apply(ev);
    applied += delta.applied ? 1 : 0;
    EXPECT_TRUE(topo.net.alive_connected()) << ev.describe(topo.net);
  }
  EXPECT_GT(applied, 0u);
}

TEST(ChurnEngine, VetoesDisconnectingKill) {
  // A 3-switch line: the middle links are bridges.
  Topology topo;
  Network& net = topo.net;
  NodeId a = net.add_switch(), b = net.add_switch(), c = net.add_switch();
  const ChannelId ab = net.add_link(a, b);
  net.add_link(b, c);
  net.add_terminal(a);
  net.add_terminal(c);
  net.freeze();

  ChurnEngine churn(topo);
  FaultEvent ev;
  ev.kind = FaultKind::kLinkDown;
  ev.channel = ab;
  const ChurnDelta delta = churn.apply(ev);
  EXPECT_FALSE(delta.applied);
  EXPECT_FALSE(delta.veto_reason.empty());
  EXPECT_TRUE(net.channel_alive(ab));
  EXPECT_TRUE(net.alive_connected());
  EXPECT_EQ(churn.events_vetoed(), 1u);
  EXPECT_EQ(churn.events_applied(), 0u);
}

TEST(ChurnEngine, DeltaReportsEffectiveChanges) {
  Topology topo = make_kary_ntree(4, 2);
  Network& net = topo.net;
  ChurnEngine churn(topo);

  const NodeId sw = net.switch_by_index(0);
  FaultEvent down{FaultKind::kSwitchDown, kInvalidChannel, sw};
  const ChurnDelta delta = churn.apply(down);
  ASSERT_TRUE(delta.applied);
  ASSERT_EQ(delta.switches_down.size(), 1u);
  EXPECT_EQ(delta.switches_down[0], sw);
  // Every physical channel touching the switch died: inter-switch links in
  // both directions plus its terminals' injection/ejection channels.
  EXPECT_EQ(delta.downed.size(),
            2 * net.out_channels_all(sw).size());
  EXPECT_EQ(delta.downed.size(), net.num_dead_channels());
  for (NodeId t : net.terminals()) {
    EXPECT_EQ(net.terminal_alive(t), net.switch_of(t) != sw);
  }

  // Re-killing a dead switch is a no-op, not a new delta.
  const ChurnDelta again = churn.apply(down);
  EXPECT_FALSE(again.applied);
  EXPECT_TRUE(again.no_effect());

  // Revival restores exactly what died.
  FaultEvent up{FaultKind::kSwitchUp, kInvalidChannel, sw};
  const ChurnDelta revive = churn.apply(up);
  ASSERT_TRUE(revive.applied);
  EXPECT_EQ(revive.restored, delta.downed);
  EXPECT_EQ(net.num_dead_channels(), 0u);
}

TEST(IncrementalDfsssp, SingleLinkRepairReroutesOnlyAffected) {
  Topology topo = make_kary_ntree(4, 2);
  IncrementalDfsssp inc;
  RouteResponse base = inc.route(RouteRequest(topo));
  ASSERT_TRUE(base.ok) << base.error;
  EXPECT_FALSE(base.repair.incremental);

  ChurnEngine churn(topo);
  const FaultSchedule kills = FaultSchedule::link_kills(topo.net, 1, 3);
  ASSERT_EQ(kills.size(), 1u);
  const ChurnDelta delta = churn.apply(kills[0]);
  ASSERT_TRUE(delta.applied);

  RouteResponse repaired = inc.repair(RouteRequest(topo), delta);
  ASSERT_TRUE(repaired.ok) << repaired.error;
  EXPECT_TRUE(repaired.repair.incremental);
  EXPECT_GT(repaired.repair.destinations_rerouted, 0u);
  // Only destinations whose forwarding trees crossed the dead link move.
  EXPECT_LT(repaired.repair.destinations_rerouted,
            topo.net.num_terminals());
  expect_reachable(topo.net, repaired.table);

  const CertCheckResult check =
      check_certificate(topo.net, repaired.table, inc.certificate());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(IncrementalDfsssp, MonotoneKillsStayMinimalAndCertified) {
  Topology topo = make_kary_ntree(4, 3);
  IncrementalDfsssp inc;
  ASSERT_TRUE(inc.route(RouteRequest(topo)).ok);
  ChurnEngine churn(topo);
  const FaultSchedule kills = FaultSchedule::link_kills(topo.net, 10, 11);
  ASSERT_GT(kills.size(), 0u);
  for (const FaultEvent& ev : kills) {
    const ChurnDelta delta = churn.apply(ev);
    if (!delta.applied) continue;
    RouteResponse out = inc.repair(RouteRequest(topo), delta);
    ASSERT_TRUE(out.ok) << out.error;
    // With no restorations in the history, repaired routings keep the
    // balanced-SSSP minimality guarantee: the accumulated balance weight on
    // any channel stays below the |V|^2 initial weight.
    const VerifyReport report = verify_routing(topo.net, out.table);
    EXPECT_TRUE(report.connected());
    EXPECT_TRUE(report.minimal());
    const CertCheckResult check =
        check_certificate(topo.net, out.table, inc.certificate());
    ASSERT_TRUE(check.ok) << check.error;
  }
}

TEST(IncrementalDfsssp, RepairProvenance) {
  Topology topo = make_kary_ntree(4, 2);
  IncrementalDfsssp inc;
  ASSERT_TRUE(inc.route(RouteRequest(topo)).ok);
  ChurnEngine churn(topo);
  Network& net = topo.net;

  const FaultSchedule kills = FaultSchedule::link_kills(net, 1, 5);
  const ChurnDelta down = churn.apply(kills[0]);
  ASSERT_TRUE(down.applied);
  RouteResponse repaired = inc.repair(RouteRequest(topo), down);
  ASSERT_TRUE(repaired.ok);
  EXPECT_TRUE(repaired.repair.incremental);
  EXPECT_TRUE(repaired.repair.fallback_reason.empty());
  EXPECT_GT(repaired.repair.paths_migrated, 0u);

  // Restoring a link keeps every existing route valid: a no-op repair.
  FaultEvent up{FaultKind::kLinkUp, down.event.channel, kInvalidNode};
  const ChurnDelta restored = churn.apply(up);
  ASSERT_TRUE(restored.applied);
  RouteResponse noop = inc.repair(RouteRequest(topo), restored);
  ASSERT_TRUE(noop.ok);
  EXPECT_TRUE(noop.repair.incremental);
  EXPECT_EQ(noop.repair.destinations_rerouted, 0u);

  // A revived switch needs entries for every destination: full recompute.
  const NodeId sw = net.switch_by_index(1);
  ASSERT_TRUE(churn.apply({FaultKind::kSwitchDown, kInvalidChannel, sw})
                  .applied);
  RouteResponse after_down = inc.repair(
      RouteRequest(topo),
      ChurnDelta{});  // deliberately stale delta: still safe, no-op
  ASSERT_TRUE(after_down.ok);
  const ChurnDelta revive =
      churn.apply({FaultKind::kSwitchUp, kInvalidChannel, sw});
  ASSERT_TRUE(revive.applied);
  RouteResponse full = inc.repair(RouteRequest(topo), revive);
  ASSERT_TRUE(full.ok);
  EXPECT_FALSE(full.repair.incremental);
  EXPECT_EQ(full.repair.fallback_reason, "switch revived");
  expect_reachable(net, full.table);
}

// Satellite: Network mutation keeps the metrics and RoutingStats.paths
// consistent — counters reflect the alive state, never stale entries.
TEST(IncrementalDfsssp, StatsAndMetricsStayConsistentUnderMutation) {
  Topology topo = make_kary_ntree(4, 2);
  Network& net = topo.net;
  obs::Registry sink;
  RouteRequest request(topo);
  request.metrics = &sink;

  IncrementalDfsssp inc;
  RouteResponse base = inc.route(request);
  ASSERT_TRUE(base.ok);
  const auto expect_consistent = [&](const RouteResponse& out) {
    const std::uint64_t alive_sw = net.num_alive_switches();
    const std::uint64_t expected =
        alive_terminals(net) * (alive_sw - 1);
    EXPECT_EQ(out.stats.paths, expected);
    const obs::Snapshot snap = sink.snapshot();
    EXPECT_EQ(snap.at("fault/active_paths").value, expected);
    EXPECT_EQ(snap.at("fault/dead_channels").value, net.num_dead_channels());
    EXPECT_EQ(snap.at("fault/layers_used").value, out.stats.layers_used);
    // No stale columns: dead destinations have no forwarding entries.
    for (NodeId d : net.terminals()) {
      if (net.terminal_alive(d)) continue;
      for (NodeId sw : net.switches()) {
        EXPECT_EQ(out.table.next(sw, d), kInvalidChannel);
      }
    }
  };
  expect_consistent(base);

  ChurnEngine churn(topo);
  // Kill a switch: its terminals must drop out of every counter.
  NodeId victim = kInvalidNode;
  ChurnDelta delta;
  for (NodeId sw : net.switches()) {
    delta = churn.apply({FaultKind::kSwitchDown, kInvalidChannel, sw});
    if (delta.applied) {
      victim = sw;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNode) << "no switch could die without partition";
  RouteResponse repaired = inc.repair(request, delta);
  ASSERT_TRUE(repaired.ok) << repaired.error;
  expect_consistent(repaired);
  EXPECT_EQ(sink.snapshot().at("fault/repairs").value, 1u);

  // And a link kill on the degraded fabric.
  const FaultSchedule kills = FaultSchedule::link_kills(net, 1, 17);
  ASSERT_EQ(kills.size(), 1u);
  const ChurnDelta link_delta = churn.apply(kills[0]);
  ASSERT_TRUE(link_delta.applied);
  RouteResponse again = inc.repair(request, link_delta);
  ASSERT_TRUE(again.ok) << again.error;
  expect_consistent(again);
  EXPECT_EQ(sink.snapshot().at("fault/repairs").value, 2u);
  EXPECT_GT(sink.snapshot().at("fault/destinations_rerouted").value, 0u);
}

// Satellite: the randomized churn soak. Every repair state must be
// reachable for alive pairs, certified deadlock-free by the independent
// checker, and bitwise identical across --threads=1/2/8.
TEST(ChurnEngine, ApplyAllCoalescesDownUpToNoEffect) {
  Topology topo = make_kary_ntree(4, 2);
  Network& net = topo.net;
  ChurnEngine churn(topo);

  const ChannelId link = FaultSchedule::link_kills(net, 1, 3)[0].channel;
  const NodeId sw = net.switch_by_index(1);
  const FaultEvent batch[] = {
      {FaultKind::kLinkDown, link, kInvalidNode},
      {FaultKind::kSwitchDown, kInvalidChannel, sw},
      {FaultKind::kLinkUp, link, kInvalidNode},
      {FaultKind::kSwitchUp, kInvalidChannel, sw},
  };
  const ChurnDelta delta =
      churn.apply_all(std::span<const FaultEvent>(batch, 4));

  // Down-then-up within one batch nets out to nothing: the coalesced delta
  // is empty, the fabric is untouched, yet each event had its individual
  // effect counted (exactly like a serial apply() loop would).
  EXPECT_TRUE(delta.no_effect());
  EXPECT_FALSE(delta.applied);
  EXPECT_TRUE(delta.veto_reason.empty());
  EXPECT_EQ(net.num_dead_channels(), 0u);
  EXPECT_TRUE(net.channel_alive(link));
  EXPECT_TRUE(net.switch_up(sw));
  EXPECT_EQ(churn.events_applied(), 4u);
  EXPECT_EQ(churn.events_vetoed(), 0u);
}

TEST(ChurnEngine, ApplyAllMatchesSerialApply) {
  Topology serial_topo = make_kary_ntree(4, 2);
  Topology batched_topo = serial_topo;

  FaultScheduleOptions opts;
  opts.num_events = 30;
  const FaultSchedule schedule =
      FaultSchedule::random(serial_topo.net, opts, 0xAB5E);
  ASSERT_GT(schedule.size(), 0u);

  ChurnEngine serial(serial_topo);
  ChurnEngine batched(batched_topo);
  const std::size_t batch = 5;
  for (std::size_t i = 0; i < schedule.size(); i += batch) {
    const std::size_t count = std::min(batch, schedule.size() - i);
    for (std::size_t j = 0; j < count; ++j) serial.apply(schedule[i + j]);
    batched.apply_all(std::span<const FaultEvent>(
        schedule.events().data() + i, count));
    // Note: connectivity itself is NOT asserted here — a switch_up can
    // revive an isolated switch, which neither apply() nor apply_all
    // vetoes (only down events are). The contract is equivalence.
    EXPECT_EQ(batched_topo.net.alive_connected(),
              serial_topo.net.alive_connected());
  }

  // Identical fault history, identical fabric — batching only coalesces
  // the reporting, never the physics.
  EXPECT_EQ(batched.events_applied(), serial.events_applied());
  EXPECT_EQ(batched.events_vetoed(), serial.events_vetoed());
  const Network& a = serial_topo.net;
  const Network& b = batched_topo.net;
  ASSERT_EQ(a.num_channels(), b.num_channels());
  for (ChannelId c = 0; c < a.num_channels(); ++c) {
    ASSERT_EQ(a.channel_alive(c), b.channel_alive(c)) << "channel " << c;
  }
  for (NodeId sw : a.switches()) {
    ASSERT_EQ(a.switch_up(sw), b.switch_up(sw)) << "switch " << sw;
  }
}

TEST(ChurnEngine, ApplyAllVetoRollsBackAndReplaysPerEvent) {
  // A 4-switch cycle a-b-c-d-a: any single link kill keeps the ring
  // connected, but killing two opposite links partitions it.
  Topology topo;
  Network& net = topo.net;
  NodeId a = net.add_switch(), b = net.add_switch(), c = net.add_switch(),
         d = net.add_switch();
  const ChannelId ab = net.add_link(a, b);
  net.add_link(b, c);
  const ChannelId cd = net.add_link(c, d);
  net.add_link(d, a);
  net.add_terminal(a);
  net.add_terminal(c);
  net.freeze();

  ChurnEngine churn(topo);
  const FaultEvent batch[] = {
      {FaultKind::kLinkDown, ab, kInvalidNode},
      {FaultKind::kLinkDown, cd, kInvalidNode},
  };
  const ChurnDelta delta =
      churn.apply_all(std::span<const FaultEvent>(batch, 2));

  // The batch as a whole partitions the ring, so it is replayed per event:
  // the first kill survives alone, the second (now a bridge kill) is
  // vetoed — exactly what a serial apply() loop would do.
  EXPECT_TRUE(delta.applied);
  EXPECT_FALSE(delta.veto_reason.empty());
  EXPECT_FALSE(net.channel_alive(ab));
  EXPECT_TRUE(net.channel_alive(cd));
  EXPECT_TRUE(net.alive_connected());
  EXPECT_EQ(churn.events_applied(), 1u);
  EXPECT_EQ(churn.events_vetoed(), 1u);

  // The coalesced delta lists exactly the one downed link, both directions.
  ASSERT_EQ(delta.downed.size(), 2u);
  EXPECT_TRUE(delta.restored.empty());
  EXPECT_TRUE(delta.switches_down.empty());
}

TEST(ChurnSoak, RepairStatesReachableCertifiedAndThreadInvariant) {
  FaultScheduleOptions opts;
  opts.num_events = 40;
  const FaultSchedule schedule = [&] {
    const Topology pristine = make_kary_ntree(4, 3);
    return FaultSchedule::random(pristine.net, opts, 0x50AC);
  }();
  ASSERT_GT(schedule.size(), 0u);

  // One full soak per thread count, on an independent Topology copy; the
  // per-event forwarding dumps and certificates must agree bitwise.
  std::vector<std::string> reference;  // dump+cert per event, threads=1
  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    const ExecContext exec(threads);
    Topology topo = make_kary_ntree(4, 3);
    ChurnEngine churn(topo);
    IncrementalDfsssp inc;
    RouteResponse out = inc.route(RouteRequest(topo, exec));
    ASSERT_TRUE(out.ok) << out.error;

    std::size_t event_index = 0;
    for (const FaultEvent& ev : schedule) {
      const ChurnDelta delta = churn.apply(ev);
      out = inc.repair(RouteRequest(topo, exec), delta);
      ASSERT_TRUE(out.ok) << ev.describe(topo.net) << ": " << out.error;
      if (delta.applied) {
        expect_reachable(topo.net, out.table);
        const CertCheckResult check =
            check_certificate(topo.net, out.table, inc.certificate());
        ASSERT_TRUE(check.ok)
            << ev.describe(topo.net) << ": " << check.error;
      }

      std::ostringstream state;
      write_forwarding_dump(topo.net, out.table, state);
      write_certificate(topo.net, inc.certificate(), state);
      if (threads == 1) {
        reference.push_back(state.str());
      } else {
        ASSERT_EQ(state.str(), reference[event_index])
            << "state diverged at threads=" << threads << " event "
            << event_index << " (" << ev.describe(topo.net) << ")";
      }
      ++event_index;
    }
  }
}

}  // namespace
}  // namespace dfsssp
