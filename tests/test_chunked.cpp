// Property tests pinning each chunked generator bitwise to its sequential
// seed generator, at several thread counts. "Bitwise" means: identical
// structure hash (nodes, channels, CSR, terminal attachments), identical
// node names, identical topology name and metadata. The sequential
// generators build through the incremental Network::add_* path, so these
// tests also cross-check NetworkBuilder assembly against it at scale.
#include "topology/chunked.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "topology/generators.hpp"
#include "topology/metrics.hpp"

namespace dfsssp {
namespace {

void expect_identical(const Topology& got, const Topology& want) {
  EXPECT_EQ(got.name, want.name);
  EXPECT_EQ(got.meta.family, want.meta.family);
  EXPECT_EQ(got.meta.dims, want.meta.dims);
  EXPECT_EQ(got.meta.wraparound, want.meta.wraparound);
  EXPECT_EQ(got.meta.sw_coord, want.meta.sw_coord);
  EXPECT_EQ(got.meta.sw_level, want.meta.sw_level);
  ASSERT_EQ(got.net.num_nodes(), want.net.num_nodes());
  ASSERT_EQ(got.net.num_channels(), want.net.num_channels());
  EXPECT_EQ(structure_hash(got.net), structure_hash(want.net));
  for (NodeId n = 0; n < got.net.num_nodes(); ++n) {
    ASSERT_EQ(got.net.node_name(n), want.net.node_name(n)) << "node " << n;
  }
}

void check_at_thread_counts(const ChunkedGenerator& gen,
                            const Topology& seed) {
  for (unsigned threads : {1U, 2U, 8U}) {
    ExecContext exec(threads);
    Topology got = generate_chunked(gen, exec);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical(got, seed);
  }
}

TEST(Chunked, DragonflyMatchesSequential) {
  check_at_thread_counts(ChunkedDragonfly(4, 2, 2, 9),
                         make_dragonfly(4, 2, 2, 9));
}

TEST(Chunked, DragonflySecondShape) {
  check_at_thread_counts(ChunkedDragonfly(2, 1, 3, 7),
                         make_dragonfly(2, 1, 3, 7));
}

TEST(Chunked, XgftMatchesSequential) {
  const std::vector<std::uint32_t> ms{4, 4}, ws{2, 2};
  check_at_thread_counts(ChunkedXgft(2, ms, ws, 4), make_xgft(2, ms, ws, 4));
}

TEST(Chunked, XgftThreeLevels) {
  const std::vector<std::uint32_t> ms{3, 2, 2}, ws{2, 2, 1};
  check_at_thread_counts(ChunkedXgft(3, ms, ws, 3), make_xgft(3, ms, ws, 3));
}

TEST(Chunked, TorusMatchesSequential) {
  const std::vector<std::uint32_t> dims{4, 3, 2};
  check_at_thread_counts(ChunkedTorus(dims, 2, true),
                         make_torus(dims, 2, true));
}

TEST(Chunked, MeshMatchesSequential) {
  const std::vector<std::uint32_t> dims{5, 4};
  check_at_thread_counts(ChunkedTorus(dims, 1, false),
                         make_torus(dims, 1, false));
}

TEST(Chunked, HyperxMatchesSequential) {
  const std::vector<std::uint32_t> dims{3, 4};
  check_at_thread_counts(ChunkedHyperx(dims, 2), make_hyperx(dims, 2));
}

TEST(Chunked, RandomRegularMatchesSequential) {
  check_at_thread_counts(ChunkedRandomRegular(50, 6, 1, 0xABCDEF),
                         make_random_regular(50, 6, 1, 0xABCDEF));
}

TEST(Chunked, RandomRegularSeedChangesStructure) {
  Topology a = generate_chunked(ChunkedRandomRegular(64, 4, 1, 1));
  Topology b = generate_chunked(ChunkedRandomRegular(64, 4, 1, 2));
  EXPECT_NE(structure_hash(a.net), structure_hash(b.net));
}

// Spans larger than one chunk (kChunkSpan = 2048 switch ids) exercise the
// multi-chunk concatenation path; 2 threads keeps runtime reasonable.
TEST(Chunked, MultiChunkTorusMatchesSequential) {
  const std::vector<std::uint32_t> dims{80, 60};  // 4800 switches, 3 chunks
  Topology seed = make_torus(dims, 1, true);
  Topology got = generate_chunked(ChunkedTorus(dims, 1, true), ExecContext(2));
  expect_identical(got, seed);
}

TEST(Chunked, NamesOffPreservesStructure) {
  ChunkedDragonfly gen(4, 2, 2, 9);
  Topology named = generate_chunked(gen);
  ChunkedOptions opts;
  opts.record_names = false;
  Topology bare = generate_chunked(gen, {}, opts);
  EXPECT_EQ(structure_hash(named.net), structure_hash(bare.net));
  EXPECT_EQ(named.net.node_name(0), "g0.s0");
  EXPECT_EQ(bare.net.node_name(0), "sw0");  // synthesized default
  EXPECT_LT(bare.net.memory_footprint(), named.net.memory_footprint());
}

TEST(IndexPermutation, IsBijective) {
  for (std::uint64_t n : {1ULL, 2ULL, 7ULL, 50ULL, 1000ULL}) {
    IndexPermutation perm(n, 0xFEED + n);
    std::set<std::uint64_t> image;
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t j = perm(i);
      ASSERT_LT(j, n);
      image.insert(j);
    }
    EXPECT_EQ(image.size(), n) << "n=" << n;
  }
}

TEST(IndexPermutation, KeyedBySeed) {
  IndexPermutation a(1000, 1), b(1000, 2);
  std::size_t differing = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) differing += a(i) != b(i);
  EXPECT_GT(differing, 900U);
}

}  // namespace
}  // namespace dfsssp
