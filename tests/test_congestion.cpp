#include "sim/congestion.hpp"

#include <gtest/gtest.h>

#include "routing/minhop.hpp"
#include "routing/sssp.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

TEST(Congestion, DisjointFlowsGetFullBandwidth) {
  Topology topo = make_ring(4, 1);
  RouteResponse out = SsspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  // Terminal 0 -> 1 and 2 -> 3: opposite sides, no sharing.
  Flows flows{{topo.net.terminal_by_index(0), topo.net.terminal_by_index(1)},
              {topo.net.terminal_by_index(2), topo.net.terminal_by_index(3)}};
  PatternResult r = simulate_pattern(topo.net, out.table, flows);
  EXPECT_DOUBLE_EQ(r.avg_flow_bandwidth, 1.0);
  EXPECT_EQ(r.max_congestion, 1U);
}

TEST(Congestion, SharedEjectionHalvesBandwidth) {
  // Two flows into the same destination terminal share its ejection link.
  Topology topo = make_single_switch(3);
  RouteResponse out = SsspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  Flows flows{{topo.net.terminal_by_index(0), topo.net.terminal_by_index(2)},
              {topo.net.terminal_by_index(1), topo.net.terminal_by_index(2)}};
  PatternResult r = simulate_pattern(topo.net, out.table, flows);
  EXPECT_DOUBLE_EQ(r.avg_flow_bandwidth, 0.5);
  EXPECT_EQ(r.max_congestion, 2U);
}

TEST(Congestion, BottleneckLinkCounts) {
  // Path of 2 switches: all cross-traffic shares the single link.
  Topology topo = make_path(2, 4);
  RouteResponse out = SsspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  Flows flows;
  for (std::uint32_t i = 0; i < 4; ++i) {
    flows.emplace_back(topo.net.terminal_by_index(i),
                       topo.net.terminal_by_index(4 + i));
  }
  PatternResult r = simulate_pattern(topo.net, out.table, flows);
  EXPECT_EQ(r.max_congestion, 4U);
  EXPECT_DOUBLE_EQ(r.avg_flow_bandwidth, 0.25);
}

TEST(Congestion, LinkCapacityScalesResult) {
  Topology topo = make_path(2, 2);
  RouteResponse out = SsspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  Flows flows{{topo.net.terminal_by_index(0), topo.net.terminal_by_index(2)},
              {topo.net.terminal_by_index(1), topo.net.terminal_by_index(3)}};
  CongestionOptions opts;
  opts.link_capacity = 946.0;
  PatternResult r = simulate_pattern(topo.net, out.table, flows, opts);
  EXPECT_DOUBLE_EQ(r.avg_flow_bandwidth, 473.0);
}

TEST(Congestion, MaxMinFairDominatesShareMetric) {
  // Max-min fairness can only give each flow at least the bottleneck share.
  Rng rng(5);
  Topology topo = make_kautz(2, 3, 24);
  RouteResponse out = SsspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  RankMap map = RankMap::round_robin(topo.net, 24);
  Flows flows = map.to_flows(random_bisection(24, rng));
  PatternResult share = simulate_pattern(topo.net, out.table, flows);
  CongestionOptions mm;
  mm.metric = BandwidthMetric::kMaxMinFair;
  PatternResult fair = simulate_pattern(topo.net, out.table, flows, mm);
  EXPECT_GE(fair.avg_flow_bandwidth, share.avg_flow_bandwidth - 1e-9);
  EXPECT_GE(fair.min_flow_bandwidth, share.min_flow_bandwidth - 1e-9);
}

TEST(Congestion, MaxMinFairConservesCapacityOnSingleLink) {
  Topology topo = make_path(2, 3);
  RouteResponse out = SsspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  Flows flows;
  for (std::uint32_t i = 0; i < 3; ++i) {
    flows.emplace_back(topo.net.terminal_by_index(i),
                       topo.net.terminal_by_index(3 + i));
  }
  CongestionOptions mm;
  mm.metric = BandwidthMetric::kMaxMinFair;
  PatternResult r = simulate_pattern(topo.net, out.table, flows, mm);
  EXPECT_NEAR(r.avg_flow_bandwidth, 1.0 / 3.0, 1e-9);
}

TEST(Congestion, EbbOnSingleSwitchIsPerfect) {
  Topology topo = make_single_switch(16);
  RouteResponse out = MinHopRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  Rng rng(6);
  RankMap map = RankMap::round_robin(topo.net, 16);
  EbbResult ebb = effective_bisection_bandwidth(topo.net, out.table, map, 20, rng);
  EXPECT_DOUBLE_EQ(ebb.ebb, 1.0);
}

TEST(Congestion, EbbDropsOnOversubscribedTree) {
  // 4 leaves with 4 terminals each, single spine: 4:1 oversubscription.
  Topology topo = make_clos2(4, 1, 1, 4);
  RouteResponse out = MinHopRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  Rng rng(7);
  RankMap map = RankMap::round_robin(topo.net, 16);
  EbbResult ebb = effective_bisection_bandwidth(topo.net, out.table, map, 50, rng);
  EXPECT_LT(ebb.ebb, 0.75);
  EXPECT_GT(ebb.ebb, 0.1);
  EXPECT_LE(ebb.min_pattern, ebb.ebb);
  EXPECT_LE(ebb.ebb, ebb.max_pattern);
}

TEST(Congestion, BatchSimulationMatchesSingleCalls) {
  Topology topo = make_kautz(2, 3, 24);
  RouteResponse out = SsspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  RankMap map = RankMap::round_robin(topo.net, 24);
  Rng rng(11);
  std::vector<Flows> patterns;
  for (int i = 0; i < 12; ++i) {
    patterns.push_back(map.to_flows(random_bisection(24, rng)));
  }
  std::vector<PatternResult> serial =
      simulate_patterns(topo.net, out.table, patterns, {}, ExecContext{1});
  std::vector<PatternResult> threaded =
      simulate_patterns(topo.net, out.table, patterns, {}, ExecContext{4});
  ASSERT_EQ(serial.size(), patterns.size());
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    PatternResult one = simulate_pattern(topo.net, out.table, patterns[i]);
    EXPECT_EQ(serial[i].avg_flow_bandwidth, one.avg_flow_bandwidth);
    EXPECT_EQ(serial[i].max_congestion, one.max_congestion);
    EXPECT_EQ(threaded[i].avg_flow_bandwidth, one.avg_flow_bandwidth);
    EXPECT_EQ(threaded[i].min_flow_bandwidth, one.min_flow_bandwidth);
  }
}

TEST(Congestion, EbbIsSeedDeterministic) {
  Topology topo = make_ring(6, 2);
  RouteResponse out = SsspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  RankMap map = RankMap::round_robin(topo.net, 12);
  Rng r1(42), r2(42);
  EbbResult a = effective_bisection_bandwidth(topo.net, out.table, map, 10, r1);
  EbbResult b = effective_bisection_bandwidth(topo.net, out.table, map, 10, r2);
  EXPECT_DOUBLE_EQ(a.ebb, b.ebb);
}

}  // namespace
}  // namespace dfsssp
