// Failure injection: the paper's core motivation is that real systems are
// irregular — degraded fat trees and tori after link/switch failures.
// DFSSSP must keep routing them connected, minimal and deadlock-free.
#include <gtest/gtest.h>

#include <set>

#include "routing/collect.hpp"
#include "routing/dfsssp.hpp"
#include "routing/router.hpp"
#include "routing/verify.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

/// Rebuilds `topo` with `kill_links` random inter-switch links removed and
/// `kill_switches` random non-critical switches removed (terminals of a
/// killed switch are dropped too). Retries seeds until connected.
Topology degrade(const Topology& topo, std::uint32_t kill_links,
                 std::uint32_t kill_switches, Rng& rng) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    const Network& src = topo.net;
    std::set<NodeId> dead_switch;
    while (dead_switch.size() < kill_switches) {
      dead_switch.insert(
          src.switch_by_index(static_cast<std::uint32_t>(
              rng.next_below(src.num_switches()))));
    }
    // Collect surviving links, then kill random ones.
    std::vector<std::pair<NodeId, NodeId>> links;
    for (ChannelId c = 0; c < src.num_channels(); ++c) {
      const Channel& ch = src.channel(c);
      if (c < ch.reverse && src.is_switch_channel(c) &&
          !dead_switch.count(ch.src) && !dead_switch.count(ch.dst)) {
        links.emplace_back(ch.src, ch.dst);
      }
    }
    if (links.size() < kill_links + 1) continue;
    std::set<std::size_t> dead_link;
    while (dead_link.size() < kill_links) {
      dead_link.insert(rng.next_below(links.size()));
    }

    Network net;
    std::vector<NodeId> remap(src.num_nodes(), kInvalidNode);
    for (NodeId sw : src.switches()) {
      if (!dead_switch.count(sw)) remap[sw] = net.add_switch();
    }
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (!dead_link.count(i)) {
        net.add_link(remap[links[i].first], remap[links[i].second]);
      }
    }
    for (NodeId t : src.terminals()) {
      NodeId sw = src.switch_of(t);
      if (remap[sw] != kInvalidNode) net.add_terminal(remap[sw]);
    }
    net.freeze();
    net.validate();
    if (!net.connected()) continue;
    Topology out;
    out.name = topo.name + "-degraded";
    out.net = std::move(net);
    out.meta.family = topo.meta.family + "/degraded";
    return out;
  }
  throw std::runtime_error("degrade: could not keep the network connected");
}

TEST(FaultInjection, DegradedFatTreeStaysDeadlockFree) {
  Topology pristine = make_kary_ntree(4, 3);
  Rng rng(1001);
  for (int round = 0; round < 3; ++round) {
    Topology topo = degrade(pristine, 6, 2, rng);
    RouteResponse out =
        DfssspRouter(DfssspOptions{.max_layers = 16}).route(RouteRequest(topo));
    ASSERT_TRUE(out.ok) << out.error;
    VerifyReport report = verify_routing(topo.net, out.table);
    EXPECT_TRUE(report.connected());
    EXPECT_TRUE(report.minimal());
    EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table));
  }
}

TEST(FaultInjection, DegradedTorusStaysDeadlockFree) {
  std::uint32_t dims[2] = {5, 5};
  Topology pristine = make_torus(dims, 2, true);
  Rng rng(2002);
  for (int round = 0; round < 3; ++round) {
    Topology topo = degrade(pristine, 4, 1, rng);
    RouteResponse out =
        DfssspRouter(DfssspOptions{.max_layers = 16}).route(RouteRequest(topo));
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_TRUE(verify_routing(topo.net, out.table).connected());
    EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table));
  }
}

TEST(FaultInjection, SpecializedEnginesDegradeButDfssspSurvives) {
  // After degradation the fat-tree engine usually refuses (missing levels)
  // while DFSSSP — the paper's point — keeps working.
  Topology pristine = make_kary_ntree(3, 3);
  Rng rng(3003);
  Topology topo = degrade(pristine, 8, 3, rng);
  bool dfsssp_ok = false;
  for (const auto& router : make_all_routers()) {
    RouteResponse out = router->route(RouteRequest(topo));
    if (router->name() == "DFSSSP") dfsssp_ok = out.ok;
    if (router->name() == "FatTree") {
      EXPECT_FALSE(out.ok) << "degraded topology lost its level metadata";
    }
  }
  EXPECT_TRUE(dfsssp_ok);
}

TEST(FaultInjection, DegradedDeimosStandIn) {
  Topology pristine = make_deimos();
  Rng rng(4004);
  Topology topo = degrade(pristine, 10, 0, rng);
  RouteResponse out = DfssspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_TRUE(verify_routing(topo.net, out.table).connected());
  EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table));
}

}  // namespace
}  // namespace dfsssp
