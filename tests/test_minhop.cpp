#include "routing/minhop.hpp"

#include <gtest/gtest.h>

#include "routing/verify.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

TEST(MinHop, ConnectedAndMinimalOnRing) {
  Topology topo = make_ring(6, 2);
  RouteResponse out = MinHopRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok) << out.error;
  VerifyReport report = verify_routing(topo.net, out.table);
  EXPECT_TRUE(report.connected());
  EXPECT_TRUE(report.minimal());
  EXPECT_EQ(report.total_paths, 6U * 12U - 12U);
}

TEST(MinHop, ConnectedAndMinimalOnTree) {
  Topology topo = make_kary_ntree(4, 2);
  RouteResponse out = MinHopRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  VerifyReport report = verify_routing(topo.net, out.table);
  EXPECT_TRUE(report.connected());
  EXPECT_TRUE(report.minimal());
}

TEST(MinHop, BalancesOverParallelLinks) {
  // Two switches, four parallel links, many destinations: the local
  // balancing must use all four links.
  Network net;
  NodeId a = net.add_switch();
  NodeId b = net.add_switch();
  std::vector<ChannelId> links;
  for (int i = 0; i < 4; ++i) links.push_back(net.add_link(a, b));
  for (int i = 0; i < 8; ++i) net.add_terminal(b);
  net.add_terminal(a);
  net.freeze();
  Topology topo{"par", std::move(net), {}};

  RouteResponse out = MinHopRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  std::vector<int> used(4, 0);
  for (NodeId t : topo.net.terminals()) {
    if (topo.net.switch_of(t) != b) continue;
    ChannelId c = out.table.next(a, t);
    for (int i = 0; i < 4; ++i) {
      if (links[i] == c) ++used[i];
    }
  }
  for (int i = 0; i < 4; ++i) EXPECT_EQ(used[i], 2) << "link " << i;
}

TEST(MinHop, FailsOnDisconnected) {
  Network net;
  NodeId a = net.add_switch();
  NodeId b = net.add_switch();
  net.add_terminal(a);
  net.add_terminal(b);
  net.freeze();
  Topology topo{"disc", std::move(net), {}};
  RouteResponse out = MinHopRouter().route(RouteRequest(topo));
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("disconnected"), std::string::npos);
}

TEST(MinHop, SingleSwitchTrivial) {
  Topology topo = make_single_switch(4);
  RouteResponse out = MinHopRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  VerifyReport report = verify_routing(topo.net, out.table);
  EXPECT_TRUE(report.connected());
  EXPECT_EQ(report.total_paths, 0U);  // all traffic is intra-switch
}

}  // namespace
}  // namespace dfsssp
