#include "routing/updown.hpp"

#include <gtest/gtest.h>

#include "cdg/verify.hpp"
#include "routing/collect.hpp"
#include "routing/verify.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

TEST(UpDown, ConnectedOnRing) {
  Topology topo = make_ring(6, 1);
  RouteResponse out = UpDownRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_TRUE(verify_routing(topo.net, out.table).connected());
}

TEST(UpDown, DeadlockFreeOnRing) {
  // The crucial property: a ring's CDG under Up*/Down* stays acyclic on a
  // single virtual layer (the root's two sides never form the full cycle).
  Topology topo = make_ring(8, 2);
  RouteResponse out = UpDownRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.stats.layers_used, 1);
  EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table));
}

TEST(UpDown, DeadlockFreeOnTorus) {
  std::uint32_t dims[2] = {4, 4};
  Topology topo = make_torus(dims, 1, true);
  RouteResponse out = UpDownRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  EXPECT_TRUE(verify_routing(topo.net, out.table).connected());
  EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table));
}

TEST(UpDown, DeadlockFreeOnRandom) {
  Rng rng(31);
  for (int i = 0; i < 3; ++i) {
    Topology topo = make_random(20, 2, 45, 8, rng);
    RouteResponse out = UpDownRouter().route(RouteRequest(topo));
    ASSERT_TRUE(out.ok);
    EXPECT_TRUE(verify_routing(topo.net, out.table).connected());
    EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table));
  }
}

TEST(UpDown, MinimalOnTree) {
  // On a tree all paths are forced; Up*/Down* must still be minimal there.
  Topology topo = make_kary_ntree(3, 2);
  RouteResponse out = UpDownRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  VerifyReport report = verify_routing(topo.net, out.table);
  EXPECT_TRUE(report.connected());
  EXPECT_TRUE(report.minimal());
}

TEST(UpDown, PathsAreUpThenDown) {
  // Extract paths and check the up*down* shape directly against the rank
  // labeling the engine used (recomputed here the same way).
  Topology topo = make_ring(7, 1);
  RouteResponse out = UpDownRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  PathSet paths = collect_paths(topo.net, out.table);
  // Recompute ranks from the same center choice.
  // (Any consistent up relation works for the shape check: a violation
  // would show as rank decreasing after it increased along a path.)
  // Here we only check there is no down->up inflection in hop levels
  // measured from the path itself: distance to destination must shrink by
  // one every hop, which extract_path already guarantees via hop limit; so
  // instead check deadlock freedom as the semantic consequence.
  EXPECT_TRUE(layering_is_deadlock_free(
      paths, std::vector<Layer>(paths.size(), 0),
      static_cast<std::uint32_t>(topo.net.num_channels())));
}

}  // namespace
}  // namespace dfsssp
