// Reproducibility guarantees: identical inputs must give bit-identical
// routings and simulated numbers (the whole bench suite relies on it).
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include <sstream>

#include "obs/metrics.hpp"
#include "routing/collect.hpp"
#include "routing/dfsssp.hpp"
#include "routing/lash.hpp"
#include "routing/minhop.hpp"
#include "routing/updown.hpp"
#include "routing/verify.hpp"
#include "sim/congestion.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

void expect_identical_tables(const Network& net, const RoutingTable& a,
                             const RoutingTable& b) {
  ASSERT_EQ(a.num_layers(), b.num_layers());
  for (NodeId s : net.switches()) {
    for (NodeId t : net.terminals()) {
      if (net.switch_of(t) == s) continue;
      ASSERT_EQ(a.next(s, t), b.next(s, t));
      ASSERT_EQ(a.layer(s, t), b.layer(s, t));
    }
  }
}

TEST(Determinism, EnginesAreDeterministic) {
  Rng r1(555), r2(555);
  Topology t1 = make_random(14, 2, 32, 8, r1);
  Topology t2 = make_random(14, 2, 32, 8, r2);
  for (const auto& make_router :
       {std::function<std::unique_ptr<Router>()>(
            [] { return std::make_unique<MinHopRouter>(); }),
        std::function<std::unique_ptr<Router>()>(
            [] { return std::make_unique<UpDownRouter>(); }),
        std::function<std::unique_ptr<Router>()>(
            [] { return std::make_unique<LashRouter>(); }),
        std::function<std::unique_ptr<Router>()>(
            [] { return std::make_unique<DfssspRouter>(); })}) {
    RouteResponse a = make_router()->route(RouteRequest(t1));
    RouteResponse b = make_router()->route(RouteRequest(t2));
    ASSERT_EQ(a.ok, b.ok);
    if (a.ok) expect_identical_tables(t1.net, a.table, b.table);
  }
}

TEST(Determinism, SimulationIsSeedStable) {
  Topology topo = make_kautz(2, 3, 48);
  RouteResponse out = DfssspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  RankMap map = RankMap::round_robin(topo.net, 48);
  Rng r1(777), r2(777);
  EbbResult a = effective_bisection_bandwidth(topo.net, out.table, map, 25, r1);
  EbbResult b = effective_bisection_bandwidth(topo.net, out.table, map, 25, r2);
  EXPECT_DOUBLE_EQ(a.ebb, b.ebb);
  EXPECT_DOUBLE_EQ(a.min_pattern, b.min_pattern);
  EXPECT_DOUBLE_EQ(a.max_pattern, b.max_pattern);
}

TEST(Determinism, EbbIsThreadCountInvariant) {
  // The determinism contract of the parallel layer: simulated numbers are
  // bitwise identical no matter how many threads computed them.
  Topology topo = make_kautz(2, 3, 48);
  RouteResponse out = DfssspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  RankMap map = RankMap::round_robin(topo.net, 48);
  Rng r1(777), r8(777);
  EbbResult serial = effective_bisection_bandwidth(topo.net, out.table, map,
                                                   50, r1, {}, ExecContext{1});
  EbbResult parallel = effective_bisection_bandwidth(
      topo.net, out.table, map, 50, r8, {}, ExecContext{8});
  EXPECT_EQ(serial.ebb, parallel.ebb);
  EXPECT_EQ(serial.min_pattern, parallel.min_pattern);
  EXPECT_EQ(serial.max_pattern, parallel.max_pattern);
}

TEST(Determinism, VerificationIsThreadCountInvariant) {
  Rng rng(901);
  Topology topo = make_random(20, 2, 50, 8, rng);
  RouteResponse out = DfssspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  VerifyReport serial = verify_routing(topo.net, out.table, ExecContext{1});
  VerifyReport parallel = verify_routing(topo.net, out.table, ExecContext{8});
  EXPECT_EQ(serial.total_paths, parallel.total_paths);
  EXPECT_EQ(serial.broken, parallel.broken);
  EXPECT_EQ(serial.non_minimal, parallel.non_minimal);
  EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table, ExecContext{8}));
}

TEST(Determinism, MetricReadingsAreThreadCountInvariant) {
  // The observability extension of the contract: everything exported in the
  // deterministic `metrics` section of a --json run report must read the
  // same at any --threads=N. Full DFSSSP route + eBB sim per thread count,
  // compared through the same serializer the bench reports use.
  const auto run = [](unsigned threads) {
    const obs::Snapshot before = obs::registry().snapshot();
    Rng rng(424242);
    Topology topo = make_random(20, 2, 50, 8, rng);
    RouteResponse out = DfssspRouter().route(RouteRequest(topo));
    EXPECT_TRUE(out.ok);
    RankMap map = RankMap::round_robin(topo.net, 40);
    Rng pat(777);
    effective_bisection_bandwidth(topo.net, out.table, map, 40, pat, {},
                                  ExecContext{threads});
    std::ostringstream json;
    obs::write_metrics_json(
        json, obs::snapshot_delta(obs::registry().snapshot(), before),
        obs::Kind::kDeterministic);
    return json.str();
  };
  const std::string one = run(1);
  const std::string two = run(2);
  const std::string eight = run(8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  // The run actually exercised the instrumented paths.
  EXPECT_NE(one.find("sim/patterns_simulated"), std::string::npos);
  EXPECT_NE(one.find("sssp/dijkstra_passes"), std::string::npos);
}

TEST(Determinism, RoutingIndependentOfPriorRouting) {
  // Engines must not share hidden state: routing topology A then B gives
  // the same B-result as routing B alone.
  Topology a = make_ring(6, 1);
  Topology b = make_kary_ntree(3, 2);
  DfssspRouter router;
  (void)router.route(RouteRequest(a));
  RouteResponse after = router.route(RouteRequest(b));
  RouteResponse fresh = DfssspRouter().route(RouteRequest(b));
  ASSERT_TRUE(after.ok);
  ASSERT_TRUE(fresh.ok);
  expect_identical_tables(b.net, after.table, fresh.table);
}

}  // namespace
}  // namespace dfsssp
