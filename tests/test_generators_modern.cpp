// HyperX / flattened-butterfly and complete-graph generators (extensions).
#include <gtest/gtest.h>

#include "routing/dfsssp.hpp"
#include "routing/collect.hpp"
#include "routing/verify.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

std::size_t num_links(const Network& net) {
  std::size_t n = 0;
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    if (net.is_switch_channel(c) && c < net.channel(c).reverse) ++n;
  }
  return n;
}

TEST(HyperX, StructureCounts) {
  std::uint32_t dims[2] = {4, 3};
  Topology t = make_hyperx(dims, 2);
  EXPECT_EQ(t.net.num_switches(), 12U);
  // Per row of 4: C(4,2)=6 links x 3 rows; per column of 3: C(3,2)=3 x 4.
  EXPECT_EQ(num_links(t.net), 6U * 3U + 3U * 4U);
  for (NodeId sw : t.net.switches()) {
    EXPECT_EQ(t.net.switch_degree(sw), 3U + 2U);
  }
  EXPECT_TRUE(t.net.connected());
  EXPECT_TRUE(t.meta.has_coords());
}

TEST(HyperX, DiameterEqualsDimensions) {
  // One hop fixes a whole coordinate, so diameter == #dims.
  std::uint32_t dims[3] = {3, 3, 3};
  Topology t = make_hyperx(dims, 1);
  std::vector<ChannelId> seq;
  RouteResponse out = DfssspRouter().route(RouteRequest(t));
  ASSERT_TRUE(out.ok);
  for (NodeId s : t.net.switches()) {
    for (NodeId term : t.net.terminals()) {
      if (t.net.switch_of(term) == s) continue;
      ASSERT_TRUE(out.table.extract_path(t.net, s, term, seq));
      EXPECT_LE(seq.size(), 3U);
    }
  }
}

TEST(HyperX, DfssspHandlesIt) {
  std::uint32_t dims[2] = {4, 4};
  Topology t = make_hyperx(dims, 2);
  RouteResponse out = DfssspRouter().route(RouteRequest(t));
  ASSERT_TRUE(out.ok) << out.error;
  VerifyReport report = verify_routing(t.net, out.table);
  EXPECT_TRUE(report.connected());
  EXPECT_TRUE(report.minimal());
  EXPECT_TRUE(routing_is_deadlock_free(t.net, out.table));
}

TEST(FullyConnected, Structure) {
  Topology t = make_fully_connected(6, 2);
  EXPECT_EQ(num_links(t.net), 15U);
  for (NodeId sw : t.net.switches()) {
    EXPECT_EQ(t.net.switch_degree(sw), 5U);
  }
}

TEST(FullyConnected, OneLayerSuffices) {
  // All minimal paths are single hops: the CDG has no edges at all.
  Topology t = make_fully_connected(5, 2);
  RouteResponse out =
      DfssspRouter(DfssspOptions{.balance = false}).route(RouteRequest(t));
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.stats.layers_used, 1);
  EXPECT_EQ(out.stats.cycles_broken, 0U);
  EXPECT_TRUE(verify_routing(t.net, out.table).minimal());
}

}  // namespace
}  // namespace dfsssp
