#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace dfsssp {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsSyntax) {
  Cli cli = make({"--size=42", "--name=foo"});
  EXPECT_EQ(cli.get_int("size", 0), 42);
  EXPECT_EQ(cli.get("name", ""), "foo");
}

TEST(Cli, SpaceSyntax) {
  Cli cli = make({"--size", "7"});
  EXPECT_EQ(cli.get_int("size", 0), 7);
}

TEST(Cli, BareFlagIsTrue) {
  Cli cli = make({"--verbose"});
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_FALSE(cli.get_bool("quiet", false));
}

TEST(Cli, FallbacksWhenMissing) {
  Cli cli = make({});
  EXPECT_EQ(cli.get_int("n", 5), 5);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 1.5), 1.5);
  EXPECT_EQ(cli.get("s", "dflt"), "dflt");
}

TEST(Cli, PositionalCollected) {
  Cli cli = make({"first", "--k=v", "second"});
  ASSERT_EQ(cli.positional().size(), 2U);
  EXPECT_EQ(cli.positional()[0], "first");
  EXPECT_EQ(cli.positional()[1], "second");
}

TEST(Cli, DoubleParsing) {
  Cli cli = make({"--rate=0.25"});
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0), 0.25);
}

TEST(Cli, BoolSpellings) {
  EXPECT_TRUE(make({"--a=1"}).get_bool("a", false));
  EXPECT_TRUE(make({"--a=yes"}).get_bool("a", false));
  EXPECT_TRUE(make({"--a=on"}).get_bool("a", false));
  EXPECT_FALSE(make({"--a=0"}).get_bool("a", true));
}

}  // namespace
}  // namespace dfsssp
