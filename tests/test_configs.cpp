#include "topology/configs.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "topology/metrics.hpp"

namespace dfsssp {
namespace {

TEST(TopoConfigs, RegistryIsWellFormed) {
  const auto& configs = topology_configs();
  ASSERT_FALSE(configs.empty());
  std::set<std::string> names;
  for (const TopoConfig& cfg : configs) {
    EXPECT_FALSE(cfg.name.empty());
    EXPECT_FALSE(cfg.summary.empty());
    EXPECT_TRUE(static_cast<bool>(cfg.build));
    EXPECT_TRUE(names.insert(cfg.name).second) << "duplicate " << cfg.name;
  }
}

TEST(TopoConfigs, LookupAndBuild) {
  ASSERT_NE(find_topology_config("torus-8-8"), nullptr);
  EXPECT_EQ(find_topology_config("no-such-config"), nullptr);
  Topology topo = build_topology_config("torus-8-8");
  EXPECT_EQ(topo.net.num_switches(), 64U);
  EXPECT_EQ(topo.meta.family, "torus");
  topo.net.validate();
  EXPECT_TRUE(topo.net.connected());
}

TEST(TopoConfigs, UnknownNameThrowsWithListing) {
  try {
    build_topology_config("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("torus-8-8"), std::string::npos);
  }
}

TEST(TopoConfigs, TableOneSizes) {
  const auto quick = table_one(false);
  const auto full = table_one(true);
  ASSERT_FALSE(quick.empty());
  EXPECT_GT(full.size(), quick.size());
  for (const TableOneRow& row : quick) {
    EXPECT_EQ(row.xgft_ms.size(), row.xgft_ws.size());
    EXPECT_GT(row.nominal_endpoints, 0U);
  }
}

TEST(TopoConfigs, BenchKeysResolve) {
  // Keys the benches iterate over must stay registered.
  for (const char* key :
       {"dragonfly-a4p4h2g9", "hyperx-8-8", "hyperx-4-4-4", "complete-16",
        "kautz-3-3", "torus-8-8", "torus-12-12", "torus-6-6-6", "torus-16-16",
        "xgft-1024", "kautz-1024", "tree-1024", "dragonfly-mid", "torus-mid",
        "xgft-mid", "random-regular-mid", "warehouse-dragonfly"}) {
    EXPECT_NE(find_topology_config(key), nullptr) << key;
  }
}

// Small variant of the warehouse config: destination sharding attaches
// `dests` terminals with an even stride instead of p per switch.
TEST(TopoConfigs, WarehouseDragonflySharded) {
  Topology topo = make_warehouse_dragonfly(4, 2, 9, 8);
  EXPECT_EQ(topo.net.num_switches(), 36U);  // a * g
  EXPECT_EQ(topo.net.num_terminals(), 8U);
  topo.net.validate();
  EXPECT_TRUE(topo.net.connected());
  // Sharded terminals land on distinct, spread-out switches.
  std::set<NodeId> attach;
  for (std::size_t t = 0; t < topo.net.num_terminals(); ++t) {
    attach.insert(topo.net.switch_of(topo.net.terminal_by_index(
        static_cast<std::uint32_t>(t))));
  }
  EXPECT_EQ(attach.size(), 8U);
  // Structure is independent of thread count.
  Topology threaded = make_warehouse_dragonfly(4, 2, 9, 8, ExecContext(4));
  EXPECT_EQ(structure_hash(threaded.net), structure_hash(topo.net));
  // Warehouse path skips the name side table by default.
  EXPECT_FALSE(topo.net.has_custom_name(0));
  EXPECT_EQ(topo.net.node_name(0), "sw0");
}

}  // namespace
}  // namespace dfsssp
