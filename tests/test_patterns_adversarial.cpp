// The classical adversarial permutations and the load-report analysis.
#include <gtest/gtest.h>

#include <set>

#include "routing/dor.hpp"
#include "routing/sssp.hpp"
#include "sim/congestion.hpp"
#include "topology/generators.hpp"
#include "traffic/patterns.hpp"

namespace dfsssp {
namespace {

TEST(AdversarialPatterns, BitReversalIsInvolution) {
  RankPattern p = bit_reversal(16);
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen(p.begin(), p.end());
  for (auto [a, b] : p) {
    EXPECT_TRUE(seen.count({b, a})) << a << "->" << b;
  }
  // Palindromic ranks (0, 6, 9, 15 for 4 bits) map to themselves: dropped.
  EXPECT_EQ(p.size(), 12U);
  EXPECT_THROW(bit_reversal(12), std::invalid_argument);
}

TEST(AdversarialPatterns, BitComplementPairsExtremes) {
  RankPattern p = bit_complement(8);
  EXPECT_EQ(p.size(), 8U);
  EXPECT_EQ(p[0], (std::pair<std::uint32_t, std::uint32_t>{0, 7}));
  EXPECT_EQ(p[3], (std::pair<std::uint32_t, std::uint32_t>{3, 4}));
}

TEST(AdversarialPatterns, Transpose2d) {
  RankPattern p = transpose2d(3);
  EXPECT_EQ(p.size(), 6U);  // 9 ranks minus 3 diagonal fixed points
  for (auto [a, b] : p) {
    EXPECT_EQ((a % 3) * 3 + a / 3, b);
  }
}

TEST(AdversarialPatterns, TornadoShift) {
  RankPattern p = tornado(8);
  // shift = ceil(8/2) - 1 = 3.
  EXPECT_EQ(p[0].second, 3U);
  EXPECT_EQ(p.size(), 8U);
}

TEST(AdversarialPatterns, GatherIsIncast) {
  RankPattern p = gather_to(6, 2);
  EXPECT_EQ(p.size(), 5U);
  for (auto [a, b] : p) {
    EXPECT_EQ(b, 2U);
    EXPECT_NE(a, 2U);
  }
}

TEST(AdversarialPatterns, TornadoCongestsDorRing) {
  // The textbook result: tornado traffic on a ring under minimal routing
  // loads one direction with ~n/2 flows per link.
  std::uint32_t dims[1] = {8};
  Topology topo = make_torus(dims, 1, true);
  RouteResponse out = DorRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  RankMap map = RankMap::round_robin(topo.net, 8);
  Flows flows = map.to_flows(tornado(8));
  PatternResult r = simulate_pattern(topo.net, out.table, flows);
  EXPECT_GE(r.max_congestion, 3U);
}

TEST(LoadReportTest, CountsFabricAndTerminalLoads) {
  Topology topo = make_path(2, 2);
  RouteResponse out = SsspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  // Both left terminals send to terminal 2 (on the right switch).
  Flows flows{{topo.net.terminal_by_index(0), topo.net.terminal_by_index(2)},
              {topo.net.terminal_by_index(1), topo.net.terminal_by_index(2)}};
  LoadReport report = analyze_load(topo.net, out.table, flows);
  EXPECT_EQ(report.max_terminal_load, 2U);   // shared ejection channel
  EXPECT_EQ(report.max_fabric_load, 2U);     // the single inter-switch link
  EXPECT_EQ(report.used_fabric_channels, 1U);
  EXPECT_EQ(report.total_fabric_channels, 2U);
  EXPECT_DOUBLE_EQ(report.imbalance, 1.0);
}

TEST(LoadReportTest, BalancedRoutingHasLowerImbalance) {
  Topology topo = make_clos2(4, 4, 1, 4);
  RouteResponse balanced = SsspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(balanced.ok);
  Rng rng(5);
  RankMap map = RankMap::round_robin(topo.net, 16);
  Flows flows = map.to_flows(all_to_all(16));
  LoadReport report = analyze_load(topo.net, balanced.table, flows);
  EXPECT_GT(report.used_fabric_channels, 0U);
  EXPECT_LE(report.imbalance, 2.5);
}

}  // namespace
}  // namespace dfsssp
