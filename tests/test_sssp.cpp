#include "routing/sssp.hpp"

#include <gtest/gtest.h>

#include "routing/collect.hpp"
#include "routing/verify.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

TEST(Sssp, ConnectedAndMinimalOnRing) {
  Topology topo = make_ring(7, 2);
  RouteResponse out = SsspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok) << out.error;
  VerifyReport report = verify_routing(topo.net, out.table);
  EXPECT_TRUE(report.connected());
  EXPECT_TRUE(report.minimal()) << report.non_minimal << " non-minimal paths";
}

TEST(Sssp, MinimalDespiteWeightGrowth) {
  // Section II: the |V|^2 initial weight guarantees minimality even after
  // many weight updates. Exercise on a topology with many alternatives.
  std::uint32_t ms[2] = {6, 6};
  std::uint32_t ws[2] = {3, 3};
  Topology topo = make_xgft(2, ms, ws);
  RouteResponse out = SsspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  VerifyReport report = verify_routing(topo.net, out.table);
  EXPECT_TRUE(report.connected());
  EXPECT_TRUE(report.minimal());
}

TEST(Sssp, BalancesBetterThanSingleLink) {
  // Two leaf switches under two spines: SSSP must not send everything over
  // one spine.
  Topology topo = make_clos2(2, 2, 1, 4);
  RouteResponse out = SsspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  PathSet paths = collect_paths(topo.net, out.table);
  std::vector<std::uint64_t> load(topo.net.num_channels(), 0);
  for (std::uint32_t p = 0; p < paths.size(); ++p) {
    for (ChannelId c : paths.channels(p)) load[c] += paths.weight(p);
  }
  // Count load on leaf0 -> spine links.
  std::vector<std::uint64_t> up_loads;
  NodeId leaf0 = topo.net.switch_by_index(0);
  for (ChannelId c : topo.net.out_switch_channels(leaf0)) {
    up_loads.push_back(load[c]);
  }
  ASSERT_EQ(up_loads.size(), 2U);
  EXPECT_GT(up_loads[0], 0U);
  EXPECT_GT(up_loads[1], 0U);
  EXPECT_EQ(up_loads[0] + up_loads[1], 4U * 4U);  // 4 dst terms x weight 4
  // Perfect split is 8/8; allow 6/10 slack.
  EXPECT_LE(std::max(up_loads[0], up_loads[1]), 10U);
}

TEST(Sssp, Figure1InitialWeightOnePathology) {
  // Section II / Figure 1: with initial edge weight 1 the accumulated
  // updates make later Dijkstra runs detour around loaded edges; the
  // |V|^2 initialization provably prevents that. Find a topology where
  // weight-1 SSSP actually produces a non-minimal path and check the
  // default never does.
  bool pathology_seen = false;
  for (std::uint64_t seed = 1; seed <= 20 && !pathology_seen; ++seed) {
    Rng rng(seed);
    Topology topo = make_random(10, 4, 16, 8, rng);
    RouteResponse bad =
        SsspRouter(SsspOptions{.initial_weight = 1}).route(RouteRequest(topo));
    ASSERT_TRUE(bad.ok);
    if (!verify_routing(topo.net, bad.table).minimal()) {
      pathology_seen = true;
      RouteResponse good = SsspRouter().route(RouteRequest(topo));
      ASSERT_TRUE(good.ok);
      EXPECT_TRUE(verify_routing(topo.net, good.table).minimal());
    }
  }
  EXPECT_TRUE(pathology_seen)
      << "no seed reproduced the Figure 1 detour; weaken the search space";
}

TEST(Sssp, UnbalancedOptionSkipsWeightUpdates) {
  Topology topo = make_ring(5, 1);
  RouteResponse out = SsspRouter(SsspOptions{.balance = false}).route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  EXPECT_TRUE(verify_routing(topo.net, out.table).connected());
}

TEST(Sssp, FailsOnDisconnected) {
  Network net;
  NodeId a = net.add_switch();
  NodeId b = net.add_switch();
  net.add_terminal(a);
  net.add_terminal(b);
  net.freeze();
  Topology topo{"disc", std::move(net), {}};
  EXPECT_FALSE(SsspRouter().route(RouteRequest(topo)).ok);
}

TEST(Sssp, PathCountsReported) {
  Topology topo = make_ring(4, 1);
  RouteResponse out = SsspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  // 4 destinations x 3 non-destination switches.
  EXPECT_EQ(out.stats.paths, 12U);
  EXPECT_GT(out.stats.route_seconds, 0.0);
}

}  // namespace
}  // namespace dfsssp
