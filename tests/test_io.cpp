#include "topology/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "topology/generators.hpp"

namespace dfsssp {
namespace {

TEST(Io, NetfileRoundTrip) {
  Topology original = make_ring(5, 2);
  std::ostringstream out;
  write_netfile(original.net, out);

  std::istringstream in(out.str());
  Topology parsed = read_netfile(in, "ring");
  EXPECT_EQ(parsed.net.num_switches(), original.net.num_switches());
  EXPECT_EQ(parsed.net.num_terminals(), original.net.num_terminals());
  EXPECT_EQ(parsed.net.num_channels(), original.net.num_channels());
  EXPECT_TRUE(parsed.net.connected());
}

TEST(Io, NetfileParsesCommentsAndBlankLines) {
  std::istringstream in(R"(# a comment
switch s0

switch s1   # trailing comment
link s0 s1
terminal t0 s0
)");
  Topology t = read_netfile(in);
  EXPECT_EQ(t.net.num_switches(), 2U);
  EXPECT_EQ(t.net.num_terminals(), 1U);
}

TEST(Io, NetfileErrorsCarryLineNumbers) {
  std::istringstream bad1("switch s0\nlink s0 missing\n");
  try {
    read_netfile(bad1);
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("netfile:2"), std::string::npos);
  }

  std::istringstream bad2("frobnicate x\n");
  EXPECT_THROW(read_netfile(bad2), std::runtime_error);

  std::istringstream bad3("switch s0\nswitch s0\n");
  EXPECT_THROW(read_netfile(bad3), std::runtime_error);

  std::istringstream bad4("switch s0\nterminal t0 s0\nlink s0 t0\n");
  EXPECT_THROW(read_netfile(bad4), std::runtime_error);
}

TEST(Io, DotOutputMentionsAllNodes) {
  Topology t = make_path(2, 1);
  std::ostringstream out;
  write_dot(t.net, out);
  const std::string dot = out.str();
  EXPECT_NE(dot.find("graph network"), std::string::npos);
  EXPECT_NE(dot.find("sw0"), std::string::npos);
  EXPECT_NE(dot.find("sw1"), std::string::npos);
  EXPECT_NE(dot.find("t0"), std::string::npos);
  EXPECT_NE(dot.find("--"), std::string::npos);
}

TEST(Io, NetfilePreservesParallelLinks) {
  Network net;
  NodeId a = net.add_switch("a");
  NodeId b = net.add_switch("b");
  net.add_link(a, b);
  net.add_link(a, b);
  net.add_terminal(a, "t");
  net.freeze();
  std::ostringstream out;
  write_netfile(net, out);
  std::istringstream in(out.str());
  Topology parsed = read_netfile(in);
  EXPECT_EQ(parsed.net.out_switch_channels(parsed.net.switch_by_index(0)).size(),
            2U);
}

}  // namespace
}  // namespace dfsssp
