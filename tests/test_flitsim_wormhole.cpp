// Multi-flit packet serialization in the flit-level simulator.
#include <gtest/gtest.h>

#include "routing/dfsssp.hpp"
#include "routing/sssp.hpp"
#include "sim/flitsim.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

TEST(FlitSimMultiFlit, SerializationScalesDrainTime) {
  Topology topo = make_path(3, 1);
  RouteResponse out = DfssspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  Flows flows{{topo.net.terminal_by_index(0), topo.net.terminal_by_index(2)}};

  FlitSimOptions unit;
  unit.packets_per_flow = 32;
  Rng r1(1);
  FlitSimResult one = simulate_flit_level(topo.net, out.table, flows, unit, r1);
  ASSERT_TRUE(one.drained);

  FlitSimOptions big = unit;
  big.flits_per_packet = 4;
  Rng r2(1);
  FlitSimResult four = simulate_flit_level(topo.net, out.table, flows, big, r2);
  ASSERT_TRUE(four.drained);

  // 32 packets over a pipeline: roughly 4x the cycles with 4-flit packets.
  EXPECT_GT(four.cycles, one.cycles * 3);
  EXPECT_LT(four.cycles, one.cycles * 6);
}

TEST(FlitSimMultiFlit, StillDetectsDeadlock) {
  Topology topo = make_ring(5, 1);
  RouteResponse out = SsspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  Flows flows;
  for (std::uint32_t i = 0; i < 5; ++i) {
    flows.emplace_back(topo.net.terminal_by_index(i),
                       topo.net.terminal_by_index((i + 2) % 5));
  }
  FlitSimOptions opts;
  opts.buffer_slots = 1;
  opts.packets_per_flow = 16;
  opts.flits_per_packet = 3;
  Rng rng(2);
  FlitSimResult r = simulate_flit_level(topo.net, out.table, flows, opts, rng);
  EXPECT_TRUE(r.deadlocked);
}

TEST(FlitSimMultiFlit, ThroughputReflectsContention) {
  // Two flows share one link: each gets about half the packet rate.
  Topology topo = make_path(2, 2);
  RouteResponse out = DfssspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  Flows flows{{topo.net.terminal_by_index(0), topo.net.terminal_by_index(2)},
              {topo.net.terminal_by_index(1), topo.net.terminal_by_index(3)}};
  FlitSimOptions opts;
  opts.packets_per_flow = 64;
  opts.buffer_slots = 4;
  Rng rng(3);
  FlitSimResult r = simulate_flit_level(topo.net, out.table, flows, opts, rng);
  ASSERT_TRUE(r.drained);
  EXPECT_GT(r.avg_flow_throughput, 0.3);
  EXPECT_LT(r.avg_flow_throughput, 0.7);
}

}  // namespace
}  // namespace dfsssp
