// The parallel execution layer: pool lifecycle, exception propagation, and
// the ordered-reduction determinism contract everything downstream leans on.
#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace dfsssp {
namespace {

TEST(ThreadPool, StartsAndShutsDownCleanly) {
  // Construction + destruction with no work must not hang or leak threads.
  for (int i = 0; i < 3; ++i) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4U);
  }
}

TEST(ThreadPool, RunChunkedCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.run_chunked(hits.size(), 7, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, IsReusableAcrossRuns) {
  ThreadPool pool(2);
  for (int run = 0; run < 50; ++run) {
    std::atomic<int> count{0};
    pool.run_chunked(100, 9, [&](std::size_t begin, std::size_t end) {
      count.fetch_add(static_cast<int>(end - begin));
    });
    ASSERT_EQ(count.load(), 100);
  }
}

TEST(ThreadPool, PropagatesExceptionsToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run_chunked(64, 1,
                       [](std::size_t begin, std::size_t) {
                         if (begin == 13) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must survive a failed run.
  std::atomic<int> count{0};
  pool.run_chunked(10, 2, [&](std::size_t begin, std::size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(Parallel, ExceptionPropagatesThroughParallelFor) {
  ExecContext exec(4);
  EXPECT_THROW(parallel_for(exec, 100,
                            [](std::size_t i) {
                              if (i == 42) throw std::runtime_error("item 42");
                            }),
               std::runtime_error);
}

TEST(Parallel, SerialContextRunsInline) {
  ExecContext exec;  // default: serial
  EXPECT_TRUE(exec.is_serial());
  EXPECT_EQ(exec.pool(), nullptr);
  std::vector<int> order;
  parallel_for(exec, 5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // safe: no threads involved
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Parallel, MapKeepsIndexOrder) {
  ExecContext exec(8);
  auto out = parallel_map(exec, 257, [](std::size_t i) { return 2 * i + 1; });
  ASSERT_EQ(out.size(), 257U);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 2 * i + 1);
}

TEST(Parallel, MapReduceFoldsInIndexOrder) {
  // String concatenation is order-sensitive: any out-of-order reduction
  // produces a different value.
  ExecContext exec(8);
  std::string parallel_result = parallel_map_reduce(
      exec, 100, std::string{},
      [](std::size_t i) { return std::to_string(i) + ","; },
      [](std::string acc, std::string item) { return acc + item; });
  std::string serial_result;
  for (std::size_t i = 0; i < 100; ++i) {
    serial_result += std::to_string(i) + ",";
  }
  EXPECT_EQ(parallel_result, serial_result);
}

TEST(Parallel, FloatReductionIsBitwiseThreadCountInvariant) {
  // The sum of many doubles of wildly different magnitudes is sensitive to
  // association order; identical bits across thread counts proves the
  // reduction order is fixed.
  auto run = [](unsigned threads) {
    ExecContext exec(threads);
    return parallel_map_reduce(
        exec, 2000, 0.0,
        [](std::size_t i) {
          Rng rng(stream_seed(0xABCDEF, i));
          return (rng.next_double() - 0.5) * std::pow(10.0, i % 30);
        },
        [](double acc, double x) { return acc + x; });
  };
  const double serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(Parallel, HardwareContextHasAtLeastOneThread) {
  ExecContext exec = ExecContext::hardware();
  EXPECT_GE(exec.num_threads(), 1U);
}

TEST(Parallel, ZeroItemsIsANoOp) {
  ExecContext exec(4);
  std::atomic<int> calls{0};
  parallel_for(exec, 0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

}  // namespace
}  // namespace dfsssp
