// Direct tests of the routing verification report (the oracle other tests
// lean on deserves its own scrutiny).
#include "routing/verify.hpp"

#include <gtest/gtest.h>

#include "routing/minhop.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

TEST(VerifyModule, CountsTotalPaths) {
  Topology topo = make_ring(4, 2);  // 4 switches x 2 terminals
  RouteResponse out = MinHopRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  VerifyReport report = verify_routing(topo.net, out.table);
  // Per terminal: 3 foreign switches -> 8 * 3 = 24 (src switch, dst) pairs.
  EXPECT_EQ(report.total_paths, 24U);
  EXPECT_EQ(report.broken, 0U);
  EXPECT_EQ(report.non_minimal, 0U);
}

TEST(VerifyModule, DetectsBrokenEntries) {
  Topology topo = make_ring(4, 1);
  RouteResponse out = MinHopRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  // Damage one entry: switch 0 loses its route to terminal 2.
  out.table.set_next(topo.net.switch_by_index(0),
                     topo.net.terminal_by_index(2), kInvalidChannel);
  VerifyReport report = verify_routing(topo.net, out.table);
  EXPECT_EQ(report.broken, 1U);
  EXPECT_FALSE(report.connected());
}

TEST(VerifyModule, DetectsNonMinimalPaths) {
  // Force the long way around a 5-ring for one (switch, dst) pair.
  Topology topo = make_ring(5, 1);
  RouteResponse out = MinHopRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  const Network& net = topo.net;
  NodeId sw0 = net.switch_by_index(0);
  NodeId t2 = net.terminal_by_index(2);  // minimal from 0: 0-1-2, 2 hops
  // Redirect 0 -> 4; switch 4 routes on to 2 via 3 (its own minimal side),
  // so the path becomes 0-4-3-2: valid but 3 hops.
  ChannelId wrong = kInvalidChannel;
  for (ChannelId c : net.out_switch_channels(sw0)) {
    if (net.channel(c).dst == net.switch_by_index(4)) wrong = c;
  }
  ASSERT_NE(wrong, kInvalidChannel);
  out.table.set_next(sw0, t2, wrong);
  ASSERT_EQ(out.table.path_hops(topo.net, sw0, t2), 3);
  VerifyReport report = verify_routing(topo.net, out.table);
  EXPECT_TRUE(report.connected());
  EXPECT_EQ(report.non_minimal, 1U);
  EXPECT_FALSE(report.minimal());
}

TEST(VerifyModule, SkipsSwitchesWithoutTerminals) {
  // Spine switches originate no traffic; their (broken) entries are not
  // counted as paths.
  Topology topo = make_clos2(2, 1, 1, 2);
  RouteResponse out = MinHopRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  VerifyReport report = verify_routing(topo.net, out.table);
  // Sources: 2 leaves x 4 terminals minus own-switch 2 each = 2 * 2 = 4.
  EXPECT_EQ(report.total_paths, 4U);
}

}  // namespace
}  // namespace dfsssp
