// Tests for the span-tree profiler: canonical aggregation of nested spans
// into the call tree, thread-count invariance of the deterministic columns
// (the contract the perf gate exact-diffs), session restart safety, the
// two export formats, and the schema 2 -> 3 report upgrade path.
#include "obs/profile/profile.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "common/parallel.hpp"
#include "obs/report/report.hpp"
#include "obs/trace.hpp"

namespace dfsssp::obs {
namespace {

/// Ends any session a prior test (or fixture ordering) left active so
/// every test starts from a clean tree.
struct ProfileTest : ::testing::Test {
  void SetUp() override { stop_profiling(); }
  void TearDown() override { stop_profiling(); }
};

/// Builds a small synthetic tree with hand-chosen elapsed times:
///   root
///     outer            (1000 ns, counter x/steps=5)
///       alpha          (25 ns)
///       inner          (2 calls, 100+50 ns, counter x/steps=7)
Profile synthetic_session() {
  start_profiling();
  const std::uint32_t outer = profile_enter("outer");
  profile_count("x/steps", 5);
  const std::uint32_t inner1 = profile_enter("inner");
  profile_count("x/steps", 7);
  profile_exit(inner1, 100);
  const std::uint32_t inner2 = profile_enter("inner");
  profile_exit(inner2, 50);
  const std::uint32_t alpha = profile_enter("alpha");
  profile_exit(alpha, 25);
  profile_exit(outer, 1000);
  return stop_profiling();
}

TEST_F(ProfileTest, InactiveProfilerRecordsNothing) {
  EXPECT_FALSE(profiling_active());
  EXPECT_EQ(profile_enter("ignored"), kNoProfileNode);
  profile_count("ignored/counter", 3);  // must not crash
  EXPECT_TRUE(collect_profile().nodes.empty());
}

TEST_F(ProfileTest, AggregatesNestedSpansIntoCanonicalTree) {
  const Profile p = synthetic_session();
  ASSERT_EQ(p.nodes.size(), 4U);

  // DFS preorder with children sorted by name: alpha before inner even
  // though inner opened first.
  EXPECT_EQ(p.nodes[0].path, "root");
  EXPECT_EQ(p.nodes[1].path, "root;outer");
  EXPECT_EQ(p.nodes[2].path, "root;outer;alpha");
  EXPECT_EQ(p.nodes[3].path, "root;outer;inner");
  EXPECT_EQ(p.nodes[3].name, "inner");
  EXPECT_EQ(p.nodes[3].depth, 2U);

  const ProfileNode& outer = p.nodes[1];
  EXPECT_EQ(outer.invocations, 1U);
  EXPECT_EQ(outer.total_ns, 1000U);
  // self = total minus the 175 ns spent in children.
  EXPECT_EQ(outer.self_ns, 825U);
  // The counter flushed before entering `inner` lands on `outer`, the
  // innermost enclosing span at the time.
  ASSERT_EQ(outer.counters.count("x/steps"), 1U);
  EXPECT_EQ(outer.counters.at("x/steps"), 5U);

  const ProfileNode& inner = p.nodes[3];
  EXPECT_EQ(inner.invocations, 2U);
  EXPECT_EQ(inner.total_ns, 150U);
  EXPECT_EQ(inner.self_ns, 150U);
  EXPECT_EQ(inner.counters.at("x/steps"), 7U);

  // Root spans the whole session wall clock; everything below it counts as
  // attributed time.
  EXPECT_EQ(p.nodes[0].invocations, 1U);
  EXPECT_GT(attributed_fraction(p), 0.0);
}

TEST_F(ProfileTest, SessionRestartDropsStaleExits) {
  start_profiling();
  const std::uint32_t stale = profile_enter("old");
  start_profiling();  // restart: `stale` belongs to a dead generation
  profile_exit(stale, 500);
  const Profile p = stop_profiling();
  ASSERT_EQ(p.nodes.size(), 1U);
  EXPECT_EQ(p.nodes[0].path, "root");
}

TEST_F(ProfileTest, FoldedExportEmitsSelfTimes) {
  const Profile p = synthetic_session();
  std::ostringstream out;
  write_folded(out, p);
  const std::string text = out.str();
  EXPECT_NE(text.find("root;outer 825\n"), std::string::npos);
  EXPECT_NE(text.find("root;outer;alpha 25\n"), std::string::npos);
  EXPECT_NE(text.find("root;outer;inner 150\n"), std::string::npos);
}

TEST_F(ProfileTest, TextTableListsCountersAndPaths) {
  const Profile p = synthetic_session();
  std::ostringstream out;
  write_profile_text(out, p, 10);
  const std::string text = out.str();
  EXPECT_NE(text.find("root;outer;inner"), std::string::npos);
  EXPECT_NE(text.find("x/steps"), std::string::npos);
}

/// The deterministic columns of a profile: everything the perf gate
/// exact-diffs, nothing that depends on wall clock.
using DetRow =
    std::tuple<std::string, std::uint64_t, std::map<std::string, std::uint64_t>>;

std::vector<DetRow> deterministic_columns(const Profile& p) {
  std::vector<DetRow> rows;
  rows.reserve(p.nodes.size());
  for (const ProfileNode& n : p.nodes) {
    rows.emplace_back(n.path, n.invocations, n.counters);
  }
  return rows;
}

std::vector<DetRow> run_workload(unsigned threads) {
  start_profiling();
  ExecContext exec(threads);
  {
    TRACE_SPAN("test/work");
    parallel_for(exec, 64, [](std::size_t i) {
      // One span + counter flush per work item — the instrumentation
      // granularity the determinism contract requires.
      TRACE_SPAN("test/item");
      PROF_COUNT("test/items", 1);
      PROF_COUNT("test/cost", static_cast<std::uint64_t>(i));
    });
  }
  return deterministic_columns(stop_profiling());
}

TEST_F(ProfileTest, DeterministicColumnsAreThreadCountInvariant) {
  const std::vector<DetRow> serial = run_workload(1);

  // The worker-side spans must attach under the submitting thread's
  // cursor, so the tree shape and every deterministic column are
  // identical at any pool width.
  ASSERT_EQ(serial.size(), 3U);  // root, test/work, test/work;test/item
  EXPECT_EQ(std::get<0>(serial[2]), "root;test/work;test/item");
  EXPECT_EQ(std::get<1>(serial[2]), 64U);
  EXPECT_EQ(std::get<2>(serial[2]).at("test/items"), 64U);
  EXPECT_EQ(std::get<2>(serial[2]).at("test/cost"), 64U * 63U / 2U);

  EXPECT_EQ(run_workload(2), serial);
  EXPECT_EQ(run_workload(8), serial);
}

// ---- report schema upgrade --------------------------------------------------

TEST_F(ProfileTest, Schema2ReportsUpgradeWithEmptyProfile) {
  // A report written before the profiler existed: no `profile` key.
  const std::string v2 = R"({
    "schema_version": 2,
    "bench": "bench_fig9",
    "tables_deterministic": true,
    "metrics": {"dfsssp/layers": 4},
    "timing_metrics": {},
    "wall_seconds": 1.5
  })";
  const RunReport r = parse_run_report(v2);
  EXPECT_EQ(r.schema_version, kReportSchemaVersion);
  ASSERT_TRUE(r.profile.is_array());
  EXPECT_EQ(r.profile.size(), 0U);
}

TEST_F(ProfileTest, ProfileSectionRoundTripsThroughReport) {
  const Profile p = synthetic_session();
  RunReport report;
  report.bench = "test";
  report.profile = profile_to_json(p);
  profile_timing_stats(p, report.timing_stats);

  std::ostringstream out;
  write_run_report(report, out);
  const RunReport back = parse_run_report(out.str());
  EXPECT_EQ(back.schema_version, kReportSchemaVersion);
  EXPECT_EQ(back.profile, report.profile);
  ASSERT_EQ(back.timing_stats.count("prof/root;outer/total_ms"), 1U);
  EXPECT_DOUBLE_EQ(back.timing_stats.at("prof/root;outer/total_ms").median_ms,
                   1000.0 / 1e6);
  EXPECT_DOUBLE_EQ(back.timing_stats.at("prof/root;outer/self_ms").median_ms,
                   825.0 / 1e6);
}

TEST_F(ProfileTest, AggregateRejectsDivergentProfiles) {
  RunReport a;
  a.bench = "test";
  a.profile = profile_to_json(synthetic_session());
  RunReport b = a;
  ASSERT_NO_THROW(aggregate_runs({a, b}));

  // Same tree, one drifted counter: a determinism-contract violation.
  b.profile.items()[1].set("invocations", JsonValue::integer(2));
  EXPECT_THROW(aggregate_runs({a, b}), std::runtime_error);
}

}  // namespace
}  // namespace dfsssp::obs
