// Parameterized property sweeps over random topologies and seeds: the
// paper-level invariants that must hold for *every* instance.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "cdg/verify.hpp"
#include "routing/collect.hpp"
#include "routing/dfsssp.hpp"
#include "routing/dump.hpp"
#include "routing/lash.hpp"
#include "routing/sssp.hpp"
#include "routing/updown.hpp"
#include "routing/verify.hpp"
#include "topology/generators.hpp"
#include "topology/io.hpp"

namespace dfsssp {
namespace {

struct RandomCase {
  std::uint64_t seed;
  std::uint32_t switches;
  std::uint32_t links;
};

void PrintTo(const RandomCase& c, std::ostream* os) {
  *os << "seed" << c.seed << "_sw" << c.switches << "_l" << c.links;
}

class RandomTopologyProperty : public ::testing::TestWithParam<RandomCase> {};

TEST_P(RandomTopologyProperty, DfssspInvariants) {
  const RandomCase& c = GetParam();
  Rng rng(c.seed);
  Topology topo = make_random(c.switches, 2, c.links, 12, rng);
  RouteResponse out =
      DfssspRouter(DfssspOptions{.max_layers = 16}).route(RouteRequest(topo));
  ASSERT_TRUE(out.ok) << out.error;
  VerifyReport report = verify_routing(topo.net, out.table);
  EXPECT_TRUE(report.connected());
  EXPECT_TRUE(report.minimal());
  EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table));
  EXPECT_LE(out.stats.layers_used, 16);
}

TEST_P(RandomTopologyProperty, LashInvariants) {
  const RandomCase& c = GetParam();
  Rng rng(c.seed ^ 0xABCDEF);
  Topology topo = make_random(c.switches, 2, c.links, 12, rng);
  RouteResponse out = LashRouter(LashOptions{.max_layers = 16}).route(RouteRequest(topo));
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_TRUE(verify_routing(topo.net, out.table).connected());
  EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table));
}

TEST_P(RandomTopologyProperty, UpDownInvariants) {
  const RandomCase& c = GetParam();
  Rng rng(c.seed ^ 0x123456);
  Topology topo = make_random(c.switches, 2, c.links, 12, rng);
  RouteResponse out = UpDownRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_TRUE(verify_routing(topo.net, out.table).connected());
  EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table));
  EXPECT_EQ(out.stats.layers_used, 1);
}

TEST_P(RandomTopologyProperty, OfflineAndOnlineDfssspBothCover) {
  const RandomCase& c = GetParam();
  Rng rng(c.seed ^ 0x777);
  Topology topo = make_random(c.switches, 2, c.links, 12, rng);
  RouteResponse offline =
      DfssspRouter(DfssspOptions{.max_layers = 16, .balance = false}).route(RouteRequest(topo));
  RouteResponse online = DfssspRouter(
      DfssspOptions{.max_layers = 16, .balance = false, .online = true})
      .route(RouteRequest(topo));
  ASSERT_TRUE(offline.ok) << offline.error;
  ASSERT_TRUE(online.ok) << online.error;
  EXPECT_TRUE(routing_is_deadlock_free(topo.net, offline.table));
  EXPECT_TRUE(routing_is_deadlock_free(topo.net, online.table));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomTopologyProperty,
    ::testing::Values(RandomCase{1, 10, 20}, RandomCase{2, 16, 30},
                      RandomCase{3, 16, 50}, RandomCase{4, 24, 40},
                      RandomCase{5, 24, 80}, RandomCase{6, 32, 60},
                      RandomCase{7, 32, 120}, RandomCase{8, 12, 12},
                      RandomCase{9, 40, 60}, RandomCase{10, 40, 150}),
    [](const ::testing::TestParamInfo<RandomCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_sw" +
             std::to_string(info.param.switches) + "_l" +
             std::to_string(info.param.links);
    });

class RingSizeProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RingSizeProperty, DfssspNeedsExactlyTwoLayersOnOddRings) {
  // Minimal routing on a ring needs one cycle cut per direction at most:
  // DFSSSP must settle at 2 layers without balancing.
  const std::uint32_t n = GetParam();
  Topology topo = make_ring(n, 1);
  RouteResponse out =
      DfssspRouter(DfssspOptions{.balance = false}).route(RouteRequest(topo));
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(out.stats.layers_used, 2) << "ring size " << n;
  EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RingSizeProperty,
                         ::testing::Values(5, 7, 9, 11, 13, 17));

class TorusSizeProperty
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(TorusSizeProperty, DfssspHandlesTori) {
  auto [a, b] = GetParam();
  std::uint32_t dims[2] = {a, b};
  Topology topo = make_torus(dims, 1, true);
  RouteResponse out = DfssspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_TRUE(verify_routing(topo.net, out.table).minimal());
  EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table));
}

INSTANTIATE_TEST_SUITE_P(Sweep, TorusSizeProperty,
                         ::testing::Values(std::make_pair(3U, 3U),
                                           std::make_pair(4U, 4U),
                                           std::make_pair(5U, 4U),
                                           std::make_pair(6U, 6U),
                                           std::make_pair(8U, 4U)));

class KautzProperty
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(KautzProperty, DfssspOnKautz) {
  auto [b, n] = GetParam();
  Topology topo = make_kautz(b, n, 8 * (b + 1));
  RouteResponse out = DfssspRouter(DfssspOptions{.max_layers = 16}).route(RouteRequest(topo));
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_TRUE(verify_routing(topo.net, out.table).minimal());
  EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table));
}

INSTANTIATE_TEST_SUITE_P(Sweep, KautzProperty,
                         ::testing::Values(std::make_pair(2U, 2U),
                                           std::make_pair(2U, 3U),
                                           std::make_pair(3U, 2U),
                                           std::make_pair(3U, 3U)));

TEST(Property, DumpRoundTripAcrossZoo) {
  // Serialization must survive every topology family, not just the ones
  // the dedicated dump tests use.
  std::uint32_t dims[2] = {3, 4};
  Rng rng(606);
  Topology zoo[] = {make_ring(6, 2), make_torus(dims, 1, true),
                    make_kary_ntree(3, 2), make_kautz(2, 2, 12),
                    make_random(10, 2, 24, 8, rng)};
  for (const Topology& topo : zoo) {
    RouteResponse out = DfssspRouter().route(RouteRequest(topo));
    ASSERT_TRUE(out.ok) << topo.name;
    std::ostringstream os;
    write_forwarding_dump(topo.net, out.table, os);
    std::istringstream is(os.str());
    RoutingTable loaded = read_forwarding_dump(topo.net, is);
    for (NodeId s : topo.net.switches()) {
      for (NodeId t : topo.net.terminals()) {
        if (topo.net.switch_of(t) == s) continue;
        ASSERT_EQ(loaded.next(s, t), out.table.next(s, t)) << topo.name;
        ASSERT_EQ(loaded.layer(s, t), out.table.layer(s, t)) << topo.name;
      }
    }
  }
}

TEST(Property, NetfileRoundTripPreservesRoutingBehavior) {
  // The netfile groups switches/terminals/links, so channel ids (and hence
  // tie-breaks) may differ after reload — but the routing's *behavior*
  // must be equivalent: same path lengths, same invariants.
  Rng rng(707);
  Topology original = make_random(12, 2, 30, 8, rng);
  std::ostringstream os;
  write_netfile(original.net, os);
  std::istringstream is(os.str());
  Topology reloaded = read_netfile(is);
  ASSERT_EQ(reloaded.net.num_switches(), original.net.num_switches());
  ASSERT_EQ(reloaded.net.num_terminals(), original.net.num_terminals());
  RouteResponse a = DfssspRouter().route(RouteRequest(original));
  RouteResponse b = DfssspRouter().route(RouteRequest(reloaded));
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_TRUE(verify_routing(reloaded.net, b.table).minimal());
  EXPECT_TRUE(routing_is_deadlock_free(reloaded.net, b.table));
  // Minimality pins path lengths: they must agree pairwise (node order is
  // preserved by the writer even though channel order is not).
  for (NodeId s : original.net.switches()) {
    for (NodeId t : original.net.terminals()) {
      if (original.net.switch_of(t) == s) continue;
      EXPECT_EQ(a.table.path_hops(original.net, s, t),
                b.table.path_hops(reloaded.net, s, t));
    }
  }
}

TEST(Property, CollectedPathsMatchTableLayerDomain) {
  // collect_paths/collect_layers round-trip: every path's layer is within
  // the table's layer count and path channels are contiguous.
  Rng rng(31337);
  Topology topo = make_random(20, 3, 45, 10, rng);
  RouteResponse out = DfssspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  PathSet paths = collect_paths(topo.net, out.table);
  std::vector<Layer> layers = collect_layers(topo.net, out.table, paths);
  EXPECT_EQ(paths.size(),
            (topo.net.num_switches()) * topo.net.num_terminals() -
                topo.net.num_terminals());
  for (std::uint32_t p = 0; p < paths.size(); ++p) {
    EXPECT_LT(layers[p], out.table.num_layers());
    auto seq = paths.channels(p);
    for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
      EXPECT_EQ(topo.net.channel(seq[i]).dst, topo.net.channel(seq[i + 1]).src);
    }
  }
}

}  // namespace
}  // namespace dfsssp
