#include "routing/dor_dateline.hpp"

#include <gtest/gtest.h>

#include "routing/collect.hpp"
#include "routing/dor.hpp"
#include "routing/verify.hpp"
#include "sim/flitsim.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

TEST(DorDateline, DeadlockFreeOnTori) {
  for (auto dims : std::vector<std::vector<std::uint32_t>>{
           {5}, {4, 4}, {5, 4}, {3, 3, 3}, {4, 3, 3}}) {
    Topology topo = make_torus(dims, 1, true);
    RouteResponse out = DorDatelineRouter().route(RouteRequest(topo));
    ASSERT_TRUE(out.ok) << topo.name << ": " << out.error;
    VerifyReport report = verify_routing(topo.net, out.table);
    EXPECT_TRUE(report.connected()) << topo.name;
    EXPECT_TRUE(report.minimal()) << topo.name;
    EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table)) << topo.name;
    EXPECT_LE(out.stats.layers_used, 1U << dims.size()) << topo.name;
  }
}

TEST(DorDateline, SamePortsAsPlainDor) {
  std::uint32_t dims[2] = {5, 5};
  Topology topo = make_torus(dims, 2, true);
  RouteResponse plain = DorRouter().route(RouteRequest(topo));
  RouteResponse dated = DorDatelineRouter().route(RouteRequest(topo));
  ASSERT_TRUE(plain.ok);
  ASSERT_TRUE(dated.ok);
  for (NodeId s : topo.net.switches()) {
    for (NodeId t : topo.net.terminals()) {
      if (topo.net.switch_of(t) == s) continue;
      EXPECT_EQ(plain.table.next(s, t), dated.table.next(s, t));
    }
  }
}

TEST(DorDateline, MeshUsesOneLayer) {
  std::uint32_t dims[2] = {4, 4};
  Topology topo = make_torus(dims, 1, false);
  RouteResponse out = DorDatelineRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.stats.layers_used, 1);
}

TEST(DorDateline, RefusesTooManyDimensions) {
  std::uint32_t dims[4] = {3, 3, 3, 3};
  Topology topo = make_torus(dims, 1, true);
  RouteResponse out = DorDatelineRouter(8).route(RouteRequest(topo));
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("layers"), std::string::npos);
}

TEST(DorDateline, DrainsWherePlainDorDeadlocks) {
  // All-around ring shift saturates every wrap ring.
  std::uint32_t dims[1] = {6};
  Topology topo = make_torus(dims, 1, true);
  Flows flows;
  const std::uint32_t n = static_cast<std::uint32_t>(topo.net.num_terminals());
  for (std::uint32_t i = 0; i < n; ++i) {
    flows.emplace_back(topo.net.terminal_by_index(i),
                       topo.net.terminal_by_index((i + 2) % n));
  }
  FlitSimOptions opts;
  opts.buffer_slots = 1;
  opts.packets_per_flow = 16;

  RouteResponse plain = DorRouter().route(RouteRequest(topo));
  ASSERT_TRUE(plain.ok);
  Rng r1(3);
  FlitSimResult plain_result =
      simulate_flit_level(topo.net, plain.table, flows, opts, r1);
  EXPECT_TRUE(plain_result.deadlocked);

  RouteResponse dated = DorDatelineRouter().route(RouteRequest(topo));
  ASSERT_TRUE(dated.ok);
  Rng r2(3);
  FlitSimResult dated_result =
      simulate_flit_level(topo.net, dated.table, flows, opts, r2);
  EXPECT_TRUE(dated_result.drained);
}

TEST(DorDateline, LayerMatchesCrossingPattern) {
  // Ring of 6: path 5 -> 0 wraps forward (layer bit 0), path 0 -> 1 not.
  std::uint32_t dims[1] = {6};
  Topology topo = make_torus(dims, 1, true);
  RouteResponse out = DorDatelineRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  NodeId sw5 = topo.net.switch_by_index(5);
  NodeId sw0 = topo.net.switch_by_index(0);
  NodeId t0 = topo.net.terminal_by_index(0);
  NodeId t1 = topo.net.terminal_by_index(1);
  EXPECT_EQ(out.table.layer(sw5, t0), 1);  // 5 -> 0 crosses the dateline
  EXPECT_EQ(out.table.layer(sw0, t1), 0);  // 0 -> 1 stays on the mesh side
}

}  // namespace
}  // namespace dfsssp
