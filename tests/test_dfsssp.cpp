#include "routing/dfsssp.hpp"

#include <gtest/gtest.h>

#include "routing/collect.hpp"
#include "routing/sssp.hpp"
#include "routing/verify.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

TEST(Dfsssp, RingBecomesDeadlockFree) {
  // Figure 2's scenario: SSSP on a ring is cyclic; DFSSSP must fix it with
  // one extra layer while keeping SSSP's paths.
  Topology topo = make_ring(5, 1);
  RouteResponse sssp = SsspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(sssp.ok);
  EXPECT_FALSE(routing_is_deadlock_free(topo.net, sssp.table));

  RouteResponse dfsssp = DfssspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(dfsssp.ok) << dfsssp.error;
  EXPECT_TRUE(routing_is_deadlock_free(topo.net, dfsssp.table));
  EXPECT_GE(dfsssp.stats.layers_used, 2);

  // Identical forwarding ports (DFSSSP only adds layers).
  for (NodeId s : topo.net.switches()) {
    for (NodeId t : topo.net.terminals()) {
      if (topo.net.switch_of(t) == s) continue;
      EXPECT_EQ(sssp.table.next(s, t), dfsssp.table.next(s, t));
    }
  }
}

TEST(Dfsssp, ConnectedAndMinimalEverywhere) {
  std::uint32_t dims[2] = {4, 4};
  std::uint32_t ms[2] = {4, 4};
  std::uint32_t ws[2] = {2, 2};
  Rng rng(11);
  Topology topos[] = {make_ring(9, 2), make_torus(dims, 2, true),
                      make_kary_ntree(4, 2), make_xgft(2, ms, ws),
                      make_kautz(2, 3, 36), make_random(16, 2, 40, 10, rng)};
  for (const Topology& topo : topos) {
    RouteResponse out = DfssspRouter().route(RouteRequest(topo));
    ASSERT_TRUE(out.ok) << topo.name << ": " << out.error;
    VerifyReport report = verify_routing(topo.net, out.table);
    EXPECT_TRUE(report.connected()) << topo.name;
    EXPECT_TRUE(report.minimal()) << topo.name;
    EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table)) << topo.name;
  }
}

TEST(Dfsssp, OnlineModeMatchesDeadlockFreedom) {
  Topology topo = make_ring(7, 2);
  RouteResponse out =
      DfssspRouter(DfssspOptions{.online = true}).route(RouteRequest(topo));
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table));
}

TEST(Dfsssp, NaiveOnlineModeMatchesInvariants) {
  // The paper's original (slow) online variant must still produce a valid
  // cover, and no worse a layer count than the incremental variant (both
  // are first-fit over the same path order).
  Rng rng(99);
  Topology topo = make_random(10, 2, 22, 8, rng);
  RouteResponse naive =
      DfssspRouter(DfssspOptions{.balance = false,
                                 .mode = LayeringMode::kOnlineNaive})
          .route(RouteRequest(topo));
  RouteResponse pk = DfssspRouter(DfssspOptions{.balance = false,
                                                 .mode = LayeringMode::kOnline})
                          .route(RouteRequest(topo));
  ASSERT_TRUE(naive.ok) << naive.error;
  ASSERT_TRUE(pk.ok);
  EXPECT_TRUE(routing_is_deadlock_free(topo.net, naive.table));
  EXPECT_EQ(naive.stats.layers_used, pk.stats.layers_used);
  // First-fit is deterministic: both variants assign identical layers.
  for (NodeId s : topo.net.switches()) {
    for (NodeId t : topo.net.terminals()) {
      if (topo.net.switch_of(t) == s) continue;
      EXPECT_EQ(naive.table.layer(s, t), pk.table.layer(s, t));
    }
  }
}

TEST(Dfsssp, HeuristicsAllProduceDeadlockFreedom) {
  Rng rng(21);
  Topology topo = make_random(20, 4, 50, 12, rng);
  for (CycleHeuristic h : {CycleHeuristic::kWeakestEdge,
                           CycleHeuristic::kHeaviestEdge,
                           CycleHeuristic::kFirstEdge}) {
    RouteResponse out =
        DfssspRouter(DfssspOptions{.heuristic = h}).route(RouteRequest(topo));
    ASSERT_TRUE(out.ok) << to_string(h) << ": " << out.error;
    EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table)) << to_string(h);
  }
}

TEST(Dfsssp, FailsGracefullyWhenLayerBudgetTooSmall) {
  Topology topo = make_ring(12, 1);
  RouteResponse out =
      DfssspRouter(DfssspOptions{.max_layers = 1}).route(RouteRequest(topo));
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("layer"), std::string::npos);
}

TEST(Dfsssp, TreeNeedsSingleLayer) {
  Topology topo = make_kary_ntree(4, 2);
  RouteResponse out =
      DfssspRouter(DfssspOptions{.balance = false}).route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.stats.layers_used, 1);
  EXPECT_EQ(out.stats.cycles_broken, 0U);
}

TEST(Dfsssp, BalanceSpreadsLayersWithoutBreakingCover) {
  Topology topo = make_ring(8, 2);
  RouteResponse balanced =
      DfssspRouter(DfssspOptions{.balance = true}).route(RouteRequest(topo));
  RouteResponse plain =
      DfssspRouter(DfssspOptions{.balance = false}).route(RouteRequest(topo));
  ASSERT_TRUE(balanced.ok);
  ASSERT_TRUE(plain.ok);
  EXPECT_TRUE(routing_is_deadlock_free(topo.net, balanced.table));
  EXPECT_GE(balanced.stats.layers_used, plain.stats.layers_used);
}

TEST(Dfsssp, LayersBelowTableCount) {
  Topology topo = make_ring(10, 1);
  RouteResponse out = DfssspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.table.num_layers(), out.stats.layers_used);
  for (NodeId s : topo.net.switches()) {
    for (NodeId t : topo.net.terminals()) {
      if (topo.net.switch_of(t) == s) continue;
      EXPECT_LT(out.table.layer(s, t), out.table.num_layers());
    }
  }
}

TEST(Dfsssp, StatsTimingsPopulated) {
  Topology topo = make_ring(6, 2);
  RouteResponse out = DfssspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  EXPECT_GT(out.stats.route_seconds, 0.0);
  EXPECT_GT(out.stats.layering_seconds, 0.0);
  EXPECT_GT(out.stats.paths, 0U);
}

}  // namespace
}  // namespace dfsssp
