// Flight recorder: record codec, bounded ring, and the DFJR on-disk
// segment format.
//
// The contracts under test (ISSUE: flight recorder):
//   * a Record round-trips the fixed-size binary codec bit-exactly and the
//     encoding is exactly kRecordBytes;
//   * the ring keeps the newest `capacity` records, counts drops, and
//     tail() streams with cursor resume and kind filtering;
//   * a DFJR segment round-trips through write (Journal sink) and
//     read_journal, self-describing header included;
//   * a flipped byte is a CRC hard error; a file cut mid-frame is a
//     tolerated truncated tail with the full prefix intact.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/journal/journal.hpp"
#include "obs/metrics.hpp"

namespace dfsssp::obs::journal {
namespace {

Record sample_record(std::uint64_t seq) {
  Record r;
  r.seq = seq;
  r.logical_ts = seq * 2 + 1;
  r.kind = static_cast<EventKind>(1 + (seq - 1) % 6);
  r.fault_kind = 2;
  r.layers = 3;
  r.flags = kFlagOk | kFlagIncremental;
  r.channel = 0xC0FFEE;
  r.sw = 42;
  r.count = 7;
  r.destinations_rerouted = 88;
  r.version_before = seq;
  r.version_after = seq + 1;
  r.paths = 64436;
  r.table_digest = 0x1c11b6248f476f1bULL;
  r.cert_digest = 0x74a6cae251ded6caULL;
  r.latency_ns = 5'287'000;
  r.req_max_layers = 8;
  return r;
}

void expect_records_equal(const Record& a, const Record& b) {
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.logical_ts, b.logical_ts);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.fault_kind, b.fault_kind);
  EXPECT_EQ(a.layers, b.layers);
  EXPECT_EQ(a.flags, b.flags);
  EXPECT_EQ(a.channel, b.channel);
  EXPECT_EQ(a.sw, b.sw);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.destinations_rerouted, b.destinations_rerouted);
  EXPECT_EQ(a.version_before, b.version_before);
  EXPECT_EQ(a.version_after, b.version_after);
  EXPECT_EQ(a.paths, b.paths);
  EXPECT_EQ(a.table_digest, b.table_digest);
  EXPECT_EQ(a.cert_digest, b.cert_digest);
  EXPECT_EQ(a.latency_ns, b.latency_ns);
  EXPECT_EQ(a.req_max_layers, b.req_max_layers);
}

TEST(JournalRecord, CodecRoundTripsExactlyRecordBytes) {
  const Record r = sample_record(3);
  std::string buf;
  encode_record(buf, r);
  ASSERT_EQ(buf.size(), kRecordBytes);

  wire::Reader reader{buf, 0};
  Record out;
  ASSERT_TRUE(decode_record(reader, out));
  expect_records_equal(r, out);
  EXPECT_EQ(reader.remaining(), 0u);

  // A short buffer never half-decodes.
  wire::Reader short_reader{std::string_view(buf).substr(0, kRecordBytes - 1),
                            0};
  EXPECT_FALSE(decode_record(short_reader, out));
}

TEST(JournalRecord, DescribeNamesEveryKind) {
  for (std::uint8_t k = 1; k <= 6; ++k) {
    Record r = sample_record(1);
    r.kind = static_cast<EventKind>(k);
    const std::string line = describe(r);
    EXPECT_NE(line.find(to_string(r.kind)), std::string::npos) << line;
  }
  EXPECT_TRUE(known_kind(1));
  EXPECT_TRUE(known_kind(6));
  EXPECT_FALSE(known_kind(0));
  EXPECT_FALSE(known_kind(7));
}

TEST(Journal, RingOverwritesOldestAndCountsDrops) {
  Registry reg;
  Journal::Options opts;
  opts.capacity = 4;
  opts.metrics = &reg;
  Journal journal(opts);

  for (std::uint64_t i = 1; i <= 10; ++i) {
    Record r = sample_record(i);
    r.kind = EventKind::kRoute;
    EXPECT_EQ(journal.append(r), i);
  }

  const JournalStats stats = journal.stats();
  EXPECT_EQ(stats.appended, 10u);
  EXPECT_EQ(stats.dropped, 6u);
  EXPECT_EQ(stats.size, 4u);
  EXPECT_EQ(stats.capacity, 4u);
  EXPECT_EQ(stats.next_seq, 11u);
  EXPECT_EQ(stats.by_kind[1], 10u);
  EXPECT_FALSE(stats.sink_open);

  // Tailing from 1 silently skips the overwritten prefix: only seq 7..10
  // survive, and the resume cursor lands one past the end.
  std::vector<Record> out;
  const std::uint64_t next = journal.tail(1, 0, 0, out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.front().seq, 7u);
  EXPECT_EQ(out.back().seq, 10u);
  EXPECT_EQ(next, 11u);

  // Resuming from the cursor returns nothing new.
  out.clear();
  EXPECT_EQ(journal.tail(next, 0, 0, out), next);
  EXPECT_TRUE(out.empty());
}

TEST(Journal, TailHonorsMaxAndKindFilter) {
  Registry reg;
  Journal::Options opts;
  opts.capacity = 64;
  opts.metrics = &reg;
  Journal journal(opts);

  // Alternate route / snapshot_swap records.
  for (std::uint64_t i = 1; i <= 10; ++i) {
    Record r = sample_record(i);
    r.kind = i % 2 == 1 ? EventKind::kRoute : EventKind::kSnapshotSwap;
    journal.append(r);
  }

  // max batches the stream; the cursor resumes exactly where it stopped.
  std::vector<Record> out;
  std::uint64_t cursor = journal.tail(1, 3, 0, out);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(cursor, 4u);
  out.clear();
  cursor = journal.tail(cursor, 0, 0, out);
  EXPECT_EQ(out.size(), 7u);
  EXPECT_EQ(cursor, 11u);

  // Kind filter: only the snapshot swaps (even seqs).
  out.clear();
  journal.tail(1, 0, static_cast<std::uint8_t>(EventKind::kSnapshotSwap),
               out);
  ASSERT_EQ(out.size(), 5u);
  for (const Record& r : out) {
    EXPECT_EQ(r.kind, EventKind::kSnapshotSwap);
    EXPECT_EQ(r.seq % 2, 0u);
  }
}

// ------------------------------------------------------------ DFJR on disk

struct TempPath {
  std::string path;
  explicit TempPath(const char* tag)
      : path(std::string(::testing::TempDir()) + "dfjr_" + tag + ".dfjr") {
    std::remove(path.c_str());
  }
  ~TempPath() { std::remove(path.c_str()); }
};

/// Writes a small segment through the Journal sink and returns its stats.
JournalStats write_segment(const std::string& path, std::uint64_t records,
                           Registry& reg) {
  Journal::Options opts;
  opts.capacity = 16;
  opts.path = path;
  opts.topo_config = "kary-tree:4:2";
  opts.engine = "dfsssp";
  opts.max_layers = 8;
  opts.metrics = &reg;
  Journal journal(opts);
  EXPECT_TRUE(journal.sink_ok()) << journal.error();
  for (std::uint64_t i = 1; i <= records; ++i) {
    journal.append(sample_record(i));
  }
  return journal.stats();  // dtor closes the sink after this
}

TEST(JournalFileFormat, SegmentRoundTripsHeaderAndRecords) {
  TempPath tmp("roundtrip");
  Registry reg;
  const JournalStats stats = write_segment(tmp.path, 9, reg);
  EXPECT_TRUE(stats.sink_open);
  EXPECT_FALSE(stats.sink_failed);
  EXPECT_GT(stats.disk_bytes, 9u * kRecordBytes);

  JournalFile file;
  std::string error;
  ASSERT_TRUE(read_journal(tmp.path, file, error)) << error;
  EXPECT_EQ(file.topo_config, "kary-tree:4:2");
  EXPECT_EQ(file.engine, "dfsssp");
  EXPECT_EQ(file.max_layers, 8u);
  EXPECT_EQ(file.record_bytes, kRecordBytes);
  EXPECT_FALSE(file.truncated_tail);
  ASSERT_EQ(file.records.size(), 9u);
  for (std::uint64_t i = 1; i <= 9; ++i) {
    expect_records_equal(sample_record(i), file.records[i - 1]);
  }

  // The ring only kept 16 slots but the segment is append-only: write more
  // than capacity and every record is still on disk.
  TempPath big("overflow");
  Registry reg2;
  write_segment(big.path, 40, reg2);
  JournalFile all;
  ASSERT_TRUE(read_journal(big.path, all, error)) << error;
  EXPECT_EQ(all.records.size(), 40u);
}

TEST(JournalFileFormat, FlippedByteIsACrcHardError) {
  TempPath tmp("corrupt");
  Registry reg;
  write_segment(tmp.path, 5, reg);

  // Flip one byte in the middle of the record region.
  std::fstream f(tmp.path,
                 std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(0, std::ios::end);
  const std::streamoff size = f.tellg();
  const std::streamoff target = size - kRecordBytes / 2;
  f.seekg(target);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(target);
  f.write(&byte, 1);
  f.close();

  JournalFile file;
  std::string error;
  EXPECT_FALSE(read_journal(tmp.path, file, error));
  EXPECT_NE(error.find("CRC"), std::string::npos) << error;
}

TEST(JournalFileFormat, TruncatedTailKeepsThePrefix) {
  TempPath tmp("truncated");
  Registry reg;
  const JournalStats stats = write_segment(tmp.path, 5, reg);

  // Cut the file mid-way through the final frame — a crash during the
  // last append. The four complete records must survive.
  ASSERT_EQ(::truncate(tmp.path.c_str(),
                       static_cast<off_t>(stats.disk_bytes - 10)),
            0);

  JournalFile file;
  std::string error;
  ASSERT_TRUE(read_journal(tmp.path, file, error)) << error;
  EXPECT_TRUE(file.truncated_tail);
  ASSERT_EQ(file.records.size(), 4u);
  for (std::uint64_t i = 1; i <= 4; ++i) {
    expect_records_equal(sample_record(i), file.records[i - 1]);
  }
}

TEST(JournalFileFormat, RejectsBadMagicAndMissingHeader) {
  TempPath tmp("badmagic");
  {
    std::ofstream f(tmp.path, std::ios::binary);
    f << "NOTJ\x01\x00 something that is not a journal";
  }
  JournalFile file;
  std::string error;
  EXPECT_FALSE(read_journal(tmp.path, file, error));
  EXPECT_FALSE(error.empty());

  std::string missing_error;
  EXPECT_FALSE(read_journal(std::string(::testing::TempDir()) +
                                "does_not_exist.dfjr",
                            file, missing_error));
  EXPECT_FALSE(missing_error.empty());
}

TEST(JournalCrc32, MatchesKnownVector) {
  // The classic zlib check value: crc32("123456789") = 0xCBF43926.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
}

}  // namespace
}  // namespace dfsssp::obs::journal
