#include "routing/fattree.hpp"

#include <gtest/gtest.h>
#include <set>

#include "routing/collect.hpp"
#include "routing/verify.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

TEST(FatTree, ConnectedMinimalDeadlockFreeOnKaryNTree) {
  Topology topo = make_kary_ntree(4, 3);
  RouteResponse out = FatTreeRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok) << out.error;
  VerifyReport report = verify_routing(topo.net, out.table);
  EXPECT_TRUE(report.connected());
  EXPECT_TRUE(report.minimal());
  EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table));
}

TEST(FatTree, WorksOnXgft) {
  std::uint32_t ms[2] = {4, 4};
  std::uint32_t ws[2] = {2, 2};
  Topology topo = make_xgft(2, ms, ws);
  RouteResponse out = FatTreeRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok) << out.error;
  VerifyReport report = verify_routing(topo.net, out.table);
  EXPECT_TRUE(report.connected());
  EXPECT_TRUE(report.minimal());
  EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table));
}

TEST(FatTree, WorksOnOdinStandIn) {
  Topology topo = make_odin();
  RouteResponse out = FatTreeRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_TRUE(verify_routing(topo.net, out.table).connected());
}

TEST(FatTree, RefusesNonTreeTopologies) {
  // No level metadata at all.
  EXPECT_FALSE(FatTreeRouter().route(RouteRequest(make_ring(5, 1))).ok);
  // Parallel links break down-path uniqueness (Ranger-style NEM uplinks).
  Topology clos = make_clos2(3, 2, 2, 2);
  RouteResponse out = FatTreeRouter().route(RouteRequest(clos));
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("unique"), std::string::npos);
}

TEST(FatTree, SpreadsDestinationsOverSpines) {
  // d-mod-k: consecutive destination indices should use different spines.
  Topology topo = make_clos2(2, 4, 1, 8);
  RouteResponse out = FatTreeRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok) << out.error;
  NodeId leaf0 = topo.net.switch_by_index(0);
  std::set<NodeId> spines_used;
  for (NodeId t : topo.net.terminals()) {
    if (topo.net.switch_of(t) == leaf0) continue;
    ChannelId c = out.table.next(leaf0, t);
    spines_used.insert(topo.net.channel(c).dst);
  }
  EXPECT_EQ(spines_used.size(), 4U);
}

}  // namespace
}  // namespace dfsssp
