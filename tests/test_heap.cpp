#include "common/heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"

namespace dfsssp {
namespace {

TEST(MinHeap, PopsInSortedOrder) {
  MinHeap<int> heap(10);
  const int keys[10] = {5, 3, 8, 1, 9, 2, 7, 0, 6, 4};
  for (std::uint32_t i = 0; i < 10; ++i) heap.push(keys[i], i);
  int last = -1;
  while (!heap.empty()) {
    auto [k, item] = heap.pop();
    EXPECT_GE(k, last);
    EXPECT_EQ(k, keys[item]);
    last = k;
  }
}

TEST(MinHeap, DecreaseKeyMovesItemUp) {
  MinHeap<int> heap(4);
  heap.push(10, 0);
  heap.push(20, 1);
  heap.push(30, 2);
  heap.decrease_key(5, 2);
  EXPECT_EQ(heap.pop().second, 2U);
}

TEST(MinHeap, ContainsTracksMembership) {
  MinHeap<int> heap(3);
  EXPECT_FALSE(heap.contains(1));
  heap.push(7, 1);
  EXPECT_TRUE(heap.contains(1));
  heap.pop();
  EXPECT_FALSE(heap.contains(1));
}

TEST(MinHeap, PushOrDecreaseIgnoresLargerKey) {
  MinHeap<int> heap(2);
  heap.push_or_decrease(5, 0);
  heap.push_or_decrease(9, 0);  // larger: no-op
  EXPECT_EQ(heap.key_of(0), 5);
  heap.push_or_decrease(2, 0);
  EXPECT_EQ(heap.key_of(0), 2);
}

TEST(MinHeap, RandomizedAgainstSort) {
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + rng.next_below(200);
    MinHeap<std::uint64_t> heap(n);
    std::vector<std::uint64_t> keys(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      keys[i] = rng.next_below(1000);
      heap.push(keys[i], i);
    }
    // Random decrease-keys.
    for (int d = 0; d < 50; ++d) {
      std::uint32_t item = static_cast<std::uint32_t>(rng.next_below(n));
      std::uint64_t nk = rng.next_below(keys[item] + 1);
      heap.decrease_key(nk, item);
      keys[item] = nk;
    }
    std::vector<std::uint64_t> sorted = keys;
    std::sort(sorted.begin(), sorted.end());
    for (std::uint64_t expect : sorted) {
      ASSERT_FALSE(heap.empty());
      EXPECT_EQ(heap.pop().first, expect);
    }
    EXPECT_TRUE(heap.empty());
  }
}

TEST(MinHeap, ResetClears) {
  MinHeap<int> heap(5);
  heap.push(1, 0);
  heap.reset(8);
  EXPECT_TRUE(heap.empty());
  EXPECT_FALSE(heap.contains(0));
  heap.push(1, 7);
  EXPECT_EQ(heap.pop().second, 7U);
}

}  // namespace
}  // namespace dfsssp
