#include "traffic/patterns.hpp"

#include <gtest/gtest.h>

#include <set>

#include "topology/generators.hpp"

namespace dfsssp {
namespace {

TEST(Patterns, RandomBisectionIsPerfectMatching) {
  Rng rng(1);
  for (std::uint32_t n : {8U, 64U, 100U}) {
    RankPattern p = random_bisection(n, rng);
    EXPECT_EQ(p.size(), n / 2);
    std::set<std::uint32_t> used;
    for (auto [a, b] : p) {
      EXPECT_NE(a, b);
      EXPECT_TRUE(used.insert(a).second);
      EXPECT_TRUE(used.insert(b).second);
    }
    EXPECT_EQ(used.size(), n);
  }
}

TEST(Patterns, RandomBisectionOddDropsOne) {
  Rng rng(2);
  RankPattern p = random_bisection(9, rng);
  EXPECT_EQ(p.size(), 4U);
}

TEST(Patterns, RandomPermutationIsFixedPointFree) {
  Rng rng(3);
  RankPattern p = random_permutation(16, rng);
  EXPECT_EQ(p.size(), 16U);
  std::set<std::uint32_t> sources, targets;
  for (auto [a, b] : p) {
    EXPECT_NE(a, b);
    sources.insert(a);
    targets.insert(b);
  }
  EXPECT_EQ(sources.size(), 16U);
  EXPECT_EQ(targets.size(), 16U);
}

TEST(Patterns, AllToAllCount) {
  RankPattern p = all_to_all(5);
  EXPECT_EQ(p.size(), 20U);
}

TEST(Patterns, RingShiftWraps) {
  RankPattern p = ring_shift(5, 2);
  EXPECT_EQ(p.size(), 5U);
  EXPECT_EQ(p[3].second, 0U);
  EXPECT_EQ(p[4].second, 1U);
}

TEST(Patterns, Stencil2dNeighborCount) {
  RankPattern p = stencil2d(4, 4);
  // 16 ranks x 4 neighbors, all distinct on a 4x4 periodic grid.
  EXPECT_EQ(p.size(), 64U);
  for (auto [a, b] : p) {
    EXPECT_LT(a, 16U);
    EXPECT_LT(b, 16U);
    EXPECT_NE(a, b);
  }
}

TEST(Patterns, Stencil3dNeighborCount) {
  RankPattern p = stencil3d(3, 3, 3);
  EXPECT_EQ(p.size(), 27U * 6U);
}

TEST(Patterns, Stencil2dDegenerateDimsDropSelfPairs) {
  // A 2x1 grid: the +x and -x neighbors coincide; self-pairs are dropped.
  RankPattern p = stencil2d(2, 1);
  for (auto [a, b] : p) EXPECT_NE(a, b);
}

TEST(Patterns, ButterflyStagePairs) {
  RankPattern p = butterfly_stage(8, 1);
  EXPECT_EQ(p.size(), 8U);
  for (auto [a, b] : p) EXPECT_EQ(a ^ 2U, b);
}

TEST(Patterns, RankMapRoundRobin) {
  Topology topo = make_ring(4, 2);  // 8 terminals
  RankMap map = RankMap::round_robin(topo.net, 6);
  EXPECT_EQ(map.num_ranks(), 6U);
  // nodes_used = 6: ranks map to distinct terminals.
  std::set<NodeId> used;
  for (std::uint32_t r = 0; r < 6; ++r) used.insert(map.terminal(r));
  EXPECT_EQ(used.size(), 6U);
}

TEST(Patterns, RankMapOversubscription) {
  Topology topo = make_ring(4, 1);  // 4 terminals
  RankMap map = RankMap::round_robin(topo.net, 10, 4);
  EXPECT_EQ(map.terminal(0), map.terminal(4));
  EXPECT_EQ(map.terminal(1), map.terminal(5));
}

TEST(Patterns, RankMapRandomAllocationDeterministicPerSeed) {
  Topology topo = make_ring(8, 2);
  Rng r1(9), r2(9);
  RankMap a = RankMap::random_allocation(topo.net, 8, 8, r1);
  RankMap b = RankMap::random_allocation(topo.net, 8, 8, r2);
  for (std::uint32_t r = 0; r < 8; ++r) {
    EXPECT_EQ(a.terminal(r), b.terminal(r));
  }
}

TEST(Patterns, ToFlowsMapsThroughRanks) {
  Topology topo = make_ring(4, 1);
  RankMap map = RankMap::round_robin(topo.net, 4);
  Flows flows = map.to_flows({{0, 2}, {1, 3}});
  ASSERT_EQ(flows.size(), 2U);
  EXPECT_EQ(flows[0].first, topo.net.terminal_by_index(0));
  EXPECT_EQ(flows[0].second, topo.net.terminal_by_index(2));
}

}  // namespace
}  // namespace dfsssp
