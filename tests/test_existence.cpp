#include "analysis/existence.hpp"

#include <gtest/gtest.h>

#include <array>

#include "analysis/lints.hpp"
#include "routing/dfsssp.hpp"
#include "routing/minhop.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

TEST(Existence, OddRingNeedsTwoLayers) {
  // The Figure 2 deadlock example: every distance-2 pair has a unique
  // shortest path, and their forced dependencies close the ring.
  Topology topo = make_ring(5, 1);
  const ExistenceBound bound = existence_lower_bound(topo.net);
  EXPECT_TRUE(bound.computed);
  EXPECT_TRUE(bound.union_cyclic);
  EXPECT_GE(bound.min_layers, 2);
  EXPECT_GT(bound.forced_deps, 0u);
}

TEST(Existence, EvenRingNeedsTwoLayersToo) {
  // Antipodal pairs have two shortest paths (no forced deps), but the
  // distance-2 pairs alone still force the full cycle.
  Topology topo = make_ring(6, 1);
  const ExistenceBound bound = existence_lower_bound(topo.net);
  EXPECT_TRUE(bound.computed);
  EXPECT_TRUE(bound.union_cyclic);
  EXPECT_GE(bound.min_layers, 2);
}

TEST(Existence, PathAndTreeAreSingleLayer) {
  Topology line = make_path(6, 1);
  const ExistenceBound line_bound = existence_lower_bound(line.net);
  EXPECT_TRUE(line_bound.computed);
  EXPECT_FALSE(line_bound.union_cyclic);
  EXPECT_EQ(line_bound.min_layers, 1);

  // Up*/down* dependencies cannot cycle in a tree-like fabric.
  Topology tree = make_kary_ntree(2, 3);
  const ExistenceBound tree_bound = existence_lower_bound(tree.net);
  EXPECT_TRUE(tree_bound.computed);
  EXPECT_FALSE(tree_bound.union_cyclic);
  EXPECT_EQ(tree_bound.min_layers, 1);
}

TEST(Existence, WrapTorusNeedsTwoLayers) {
  // Odd rings per dimension: +2 along an axis has a unique shortest path,
  // so each axis ring is forced closed. (A 4x4 wrap torus proves nothing:
  // its antipodal ring pairs have two equal shortest paths, and the
  // conservative bound only counts unavoidable dependencies.)
  const std::array<std::uint32_t, 2> dims{5, 5};
  Topology topo = make_torus(dims, 1, /*wraparound=*/true);
  const ExistenceBound bound = existence_lower_bound(topo.net);
  EXPECT_TRUE(bound.computed);
  EXPECT_TRUE(bound.union_cyclic);
  EXPECT_GE(bound.min_layers, 2);
}

TEST(Existence, SwitchCapSkipsComputation) {
  Topology topo = make_ring(8, 1);
  const ExistenceBound bound = existence_lower_bound(topo.net, 4);
  EXPECT_FALSE(bound.computed);
  EXPECT_EQ(bound.min_layers, 1);
}

TEST(Existence, LintFiresOnUnderdeclaredMinimalRouting) {
  // MinHop on a ring: minimal paths, a single layer, and (as the paper's
  // Figure 2 shows) deadlock-prone. The declared layer count sits below
  // the provable bound, so the lint must flag the inconsistency.
  Topology topo = make_ring(6, 1);
  RouteResponse out = MinHopRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  ASSERT_EQ(out.table.num_layers(), 1);
  LintReport report = lint_routing(topo.net, out.table);
  EXPECT_EQ(report.count(LintKind::kNonMinimalPath), 0u);
  EXPECT_EQ(report.count(LintKind::kLayersBelowExistenceBound), 1u);
}

TEST(Existence, ValidDfssspRoutingNeverTripsTheLint) {
  // The bound is sound: any certificate-passing minimal routing declares
  // at least as many layers as the bound proves necessary.
  for (std::uint32_t n : {5u, 6u, 9u}) {
    Topology topo = make_ring(n, 1);
    RouteResponse out = DfssspRouter().route(RouteRequest(topo));
    ASSERT_TRUE(out.ok);
    LintReport report = lint_routing(topo.net, out.table);
    EXPECT_EQ(report.count(LintKind::kLayersBelowExistenceBound), 0u)
        << "ring size " << n;
    EXPECT_GE(out.table.num_layers(),
              existence_lower_bound(topo.net).min_layers)
        << "ring size " << n;
  }
}

TEST(Existence, LintSkipsWhenDisabled) {
  Topology topo = make_ring(6, 1);
  RouteResponse out = MinHopRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  LintOptions options;
  options.existence_bound = false;
  LintReport report = lint_routing(topo.net, out.table, options);
  EXPECT_EQ(report.count(LintKind::kLayersBelowExistenceBound), 0u);
}

}  // namespace
}  // namespace dfsssp
