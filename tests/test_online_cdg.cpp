#include "cdg/online.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "cdg/verify.hpp"
#include "common/rng.hpp"

namespace dfsssp {
namespace {

TEST(OnlineCdg, AcceptsAcyclicPaths) {
  OnlineCdg cdg(5);
  EXPECT_TRUE(cdg.try_add_path(std::vector<ChannelId>{0, 1, 2}));
  EXPECT_TRUE(cdg.try_add_path(std::vector<ChannelId>{0, 2, 3}));
  EXPECT_TRUE(cdg.try_add_path(std::vector<ChannelId>{3, 4}));
  EXPECT_EQ(cdg.num_paths(), 3U);
  EXPECT_TRUE(cdg.has_edge(0, 1));
  EXPECT_TRUE(cdg.has_edge(3, 4));
}

TEST(OnlineCdg, RejectsCycleClosingPathAndRollsBack) {
  OnlineCdg cdg(4);
  EXPECT_TRUE(cdg.try_add_path(std::vector<ChannelId>{0, 1, 2}));
  // 2 -> 3 -> 0 would close 0->1->2->3->0.
  EXPECT_FALSE(cdg.try_add_path(std::vector<ChannelId>{2, 3, 0}));
  EXPECT_EQ(cdg.num_paths(), 1U);
  // Rollback: the partial edge (2,3) must be gone.
  EXPECT_FALSE(cdg.has_edge(2, 3));
  // And an acyclic path using (2,3) must still be accepted.
  EXPECT_TRUE(cdg.try_add_path(std::vector<ChannelId>{2, 3}));
}

TEST(OnlineCdg, RefcountsSharedEdges) {
  OnlineCdg cdg(3);
  EXPECT_TRUE(cdg.try_add_path(std::vector<ChannelId>{0, 1}));
  EXPECT_TRUE(cdg.try_add_path(std::vector<ChannelId>{0, 1, 2}));
  EXPECT_EQ(cdg.num_edges(), 2U);  // (0,1) shared, (1,2)
}

TEST(OnlineCdg, RejectsTwoCycle) {
  OnlineCdg cdg(2);
  EXPECT_TRUE(cdg.try_add_path(std::vector<ChannelId>{0, 1}));
  EXPECT_FALSE(cdg.try_add_path(std::vector<ChannelId>{1, 0}));
}

TEST(OnlineCdg, ReorderKeepsAcceptingValidEdges) {
  // Insert the chain 0->1->...->5 back to front: every path forces a
  // Pearce-Kelly reorder (new edges point at smaller initial order values).
  OnlineCdg cdg(6);
  EXPECT_TRUE(cdg.try_add_path(std::vector<ChannelId>{4, 5}));
  EXPECT_TRUE(cdg.try_add_path(std::vector<ChannelId>{2, 3, 4}));
  EXPECT_TRUE(cdg.try_add_path(std::vector<ChannelId>{0, 1, 2}));
  // The chain is now complete; closing it must be rejected...
  EXPECT_FALSE(cdg.try_add_path(std::vector<ChannelId>{5, 0}));
  // ...but a parallel shortcut in chain direction is fine.
  EXPECT_TRUE(cdg.try_add_path(std::vector<ChannelId>{0, 3, 5}));
}

TEST(OnlineCdg, RandomizedAgainstNaiveChecker) {
  Rng rng(2024);
  for (int round = 0; round < 15; ++round) {
    const std::uint32_t num_nodes = 10;
    OnlineCdg cdg(num_nodes);
    PathSet accepted;
    std::vector<std::uint32_t> members;
    for (int step = 0; step < 60; ++step) {
      // Random simple path of length 2..4.
      std::vector<ChannelId> seq;
      std::vector<bool> used(num_nodes, false);
      std::uint32_t len = 2 + static_cast<std::uint32_t>(rng.next_below(3));
      for (std::uint32_t i = 0; i < len; ++i) {
        ChannelId c = static_cast<ChannelId>(rng.next_below(num_nodes));
        if (used[c]) break;
        used[c] = true;
        seq.push_back(c);
      }
      if (seq.size() < 2) continue;

      // Oracle: would the naive union stay acyclic?
      PathSet trial = accepted;
      trial.add(0, 0, seq, 1);
      std::vector<std::uint32_t> trial_members(trial.size());
      std::iota(trial_members.begin(), trial_members.end(), 0U);
      const bool oracle = paths_are_acyclic(trial, trial_members, num_nodes);

      const bool got = cdg.try_add_path(seq);
      ASSERT_EQ(got, oracle) << "round " << round << " step " << step;
      if (got) {
        accepted.add(0, 0, seq, 1);
        members.push_back(static_cast<std::uint32_t>(members.size()));
      }
    }
    // Final state must be acyclic.
    EXPECT_TRUE(paths_are_acyclic(accepted, members, num_nodes));
  }
}

TEST(OnlineCdg, SelfLoopRejected) {
  OnlineCdg cdg(2);
  EXPECT_FALSE(cdg.try_add_path(std::vector<ChannelId>{1, 1}));
}

}  // namespace
}  // namespace dfsssp
