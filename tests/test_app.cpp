#include "cdg/app.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"

namespace dfsssp::app {
namespace {

TEST(App, UnionAcyclicDetectsCycles) {
  Instance inst;
  inst.num_nodes = 3;
  inst.paths = {{0, 1}, {1, 2}, {2, 0}};
  std::vector<std::uint32_t> all{0, 1, 2};
  EXPECT_FALSE(union_is_acyclic(inst, all));
  std::vector<std::uint32_t> two{0, 1};
  EXPECT_TRUE(union_is_acyclic(inst, two));
}

TEST(App, IsCoverValidatesAssignments) {
  Instance inst;
  inst.num_nodes = 2;
  inst.paths = {{0, 1}, {1, 0}};
  std::vector<std::uint32_t> good{0, 1};
  EXPECT_TRUE(is_cover(inst, good, 2));
  std::vector<std::uint32_t> bad{0, 0};
  EXPECT_FALSE(is_cover(inst, bad, 2));
  std::vector<std::uint32_t> out_of_range{0, 2};
  EXPECT_FALSE(is_cover(inst, out_of_range, 2));
}

TEST(App, ExactSolverMatchesHandComputedCases) {
  // Figure 3: a=0 b=1 c=2 d=3; p1=bc, p2=abc, p3=cdab; minimum is 2.
  Instance fig3;
  fig3.num_nodes = 4;
  fig3.paths = {{1, 2}, {0, 1, 2}, {2, 3, 0, 1}};
  EXPECT_EQ(exact_min_layers(fig3, 4), 2U);

  // All paths disjoint: 1 class.
  Instance disjoint;
  disjoint.num_nodes = 6;
  disjoint.paths = {{0, 1}, {2, 3}, {4, 5}};
  EXPECT_EQ(exact_min_layers(disjoint, 4), 1U);

  // Three pairwise 2-cycles (triangle): needs 3.
  Instance triangle;
  triangle.num_nodes = 6;
  triangle.paths = {{0, 1, 2, 3}, {1, 0, 4, 5}, {3, 2, 5, 4}};
  EXPECT_EQ(exact_min_layers(triangle, 4), 3U);
}

TEST(App, ExactReturnsZeroWhenInfeasible) {
  Instance triangle;
  triangle.num_nodes = 6;
  triangle.paths = {{0, 1, 2, 3}, {1, 0, 4, 5}, {3, 2, 5, 4}};
  EXPECT_EQ(exact_min_layers(triangle, 2), 0U);
}

TEST(App, FirstFitIsAnUpperBound) {
  Rng rng(55);
  for (int round = 0; round < 20; ++round) {
    Instance inst;
    inst.num_nodes = 8;
    for (int p = 0; p < 6; ++p) {
      std::vector<Node> path;
      std::vector<bool> used(inst.num_nodes, false);
      for (int i = 0; i < 4; ++i) {
        Node n = static_cast<Node>(rng.next_below(inst.num_nodes));
        if (used[n]) break;
        used[n] = true;
        path.push_back(n);
      }
      if (path.size() >= 2) inst.paths.push_back(std::move(path));
    }
    std::uint32_t exact = exact_min_layers(inst, 8);
    std::uint32_t greedy = first_fit_layers(inst, 8);
    ASSERT_NE(exact, 0U);
    ASSERT_NE(greedy, 0U);
    EXPECT_LE(exact, greedy);
  }
}

TEST(AppReduction, AdjacentVerticesClash) {
  // Single edge {0,1}: paths of 0 and 1 must not share a class.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{{0, 1}};
  Instance inst = reduction_from_coloring(2, edges);
  ASSERT_EQ(inst.paths.size(), 2U);
  std::vector<std::uint32_t> together{0, 1};
  EXPECT_FALSE(union_is_acyclic(inst, together));
  std::vector<std::uint32_t> alone{0};
  EXPECT_TRUE(union_is_acyclic(inst, alone));
}

TEST(AppReduction, IndependentSetsAreCompatible) {
  // Path graph 0-1-2: vertices 0 and 2 are independent.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{{0, 1}, {1, 2}};
  Instance inst = reduction_from_coloring(3, edges);
  std::vector<std::uint32_t> independent{0, 2};
  EXPECT_TRUE(union_is_acyclic(inst, independent));
}

TEST(AppReduction, TriangleNeedsThree) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{
      {0, 1}, {1, 2}, {0, 2}};
  Instance inst = reduction_from_coloring(3, edges);
  EXPECT_EQ(exact_min_layers(inst, 4), 3U);
  EXPECT_EQ(chromatic_number(3, edges, 4), 3U);
}

TEST(AppReduction, BipartiteNeedsTwo) {
  // C4 cycle: 2-colorable.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{
      {0, 1}, {1, 2}, {2, 3}, {3, 0}};
  Instance inst = reduction_from_coloring(4, edges);
  EXPECT_EQ(exact_min_layers(inst, 4), 2U);
  EXPECT_EQ(chromatic_number(4, edges, 4), 2U);
}

TEST(AppReduction, RandomGraphsMatchChromaticNumber) {
  // Theorem 1 exercised constructively: min APP layers == chromatic number
  // on random graphs (both brute force; keep sizes tiny).
  Rng rng(77);
  for (int round = 0; round < 12; ++round) {
    const std::uint32_t n = 4 + static_cast<std::uint32_t>(rng.next_below(3));
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    for (std::uint32_t a = 0; a < n; ++a) {
      for (std::uint32_t b = a + 1; b < n; ++b) {
        if (rng.next_below(100) < 45) edges.emplace_back(a, b);
      }
    }
    Instance inst = reduction_from_coloring(n, edges);
    const std::uint32_t chi = chromatic_number(n, edges, n);
    const std::uint32_t app_min = exact_min_layers(inst, n);
    EXPECT_EQ(chi, app_min) << "round " << round << " n=" << n
                            << " edges=" << edges.size();
  }
}

TEST(AppReduction, IsolatedVerticesNeedOneClass) {
  Instance inst = reduction_from_coloring(3, {});
  EXPECT_EQ(exact_min_layers(inst, 3), 1U);
}

}  // namespace
}  // namespace dfsssp::app
