#include "common/union_find.hpp"

#include <gtest/gtest.h>

namespace dfsssp {
namespace {

TEST(UnionFind, StartsFullyDisjoint) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5U);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(uf.find(i), i);
}

TEST(UnionFind, UniteMergesAndCounts) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));  // already joined
  EXPECT_EQ(uf.num_sets(), 3U);
  EXPECT_EQ(uf.find(0), uf.find(1));
  EXPECT_NE(uf.find(0), uf.find(2));
}

TEST(UnionFind, TransitiveMerge) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(2, 3);
  uf.unite(1, 2);
  EXPECT_EQ(uf.find(0), uf.find(3));
  EXPECT_EQ(uf.size_of(0), 4U);
  EXPECT_EQ(uf.num_sets(), 3U);
}

TEST(UnionFind, ResetRestores) {
  UnionFind uf(3);
  uf.unite(0, 2);
  uf.reset(3);
  EXPECT_EQ(uf.num_sets(), 3U);
  EXPECT_NE(uf.find(0), uf.find(2));
}

}  // namespace
}  // namespace dfsssp
