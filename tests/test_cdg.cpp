#include "cdg/cdg.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "cdg/verify.hpp"
#include "common/rng.hpp"

namespace dfsssp {
namespace {

PathSet make_paths(std::initializer_list<std::vector<ChannelId>> seqs) {
  PathSet paths;
  std::uint32_t i = 0;
  for (const auto& s : seqs) {
    paths.add(i, i, s, 1);
    ++i;
  }
  return paths;
}

std::vector<std::uint32_t> all_members(const PathSet& paths) {
  std::vector<std::uint32_t> m(paths.size());
  std::iota(m.begin(), m.end(), 0U);
  return m;
}

TEST(Cdg, BuildsEdgesWithPathLists) {
  // Two paths sharing the edge (1,2).
  PathSet paths = make_paths({{0, 1, 2}, {1, 2, 3}});
  Cdg cdg(paths, all_members(paths), 4);
  EXPECT_EQ(cdg.num_edges(), 3U);  // (0,1) (1,2) (2,3)
  auto edges1 = cdg.out_edges(1);
  ASSERT_EQ(edges1.size(), 1U);
  EXPECT_EQ(edges1[0].to, 2U);
  EXPECT_EQ(edges1[0].alive_count, 2U);
  EXPECT_EQ(edges1[0].alive_weight, 2U);
}

TEST(Cdg, RemovePathDecrementsEdges) {
  PathSet paths = make_paths({{0, 1, 2}, {1, 2, 3}});
  Cdg cdg(paths, all_members(paths), 4);
  cdg.remove_path(paths, 0);
  EXPECT_FALSE(cdg.path_alive(0));
  auto edges1 = cdg.out_edges(1);
  EXPECT_EQ(edges1[0].alive_count, 1U);
  auto edges0 = cdg.out_edges(0);
  EXPECT_EQ(edges0[0].alive_count, 0U);
}

TEST(CycleFinderTest, FindsNoCycleInDag) {
  PathSet paths = make_paths({{0, 1, 2}, {0, 2, 3}});
  Cdg cdg(paths, all_members(paths), 4);
  CycleFinder finder(cdg);
  std::vector<std::uint32_t> cycle;
  EXPECT_FALSE(finder.next_cycle(cycle));
}

TEST(CycleFinderTest, FindsSimpleCycle) {
  // Paths 0->1 and 1->0 create a 2-cycle between channel-nodes 0 and 1.
  PathSet paths = make_paths({{0, 1}, {1, 0}});
  Cdg cdg(paths, all_members(paths), 2);
  CycleFinder finder(cdg);
  std::vector<std::uint32_t> cycle;
  ASSERT_TRUE(finder.next_cycle(cycle));
  EXPECT_EQ(cycle.size(), 2U);
}

TEST(CycleFinderTest, ResumeAfterCut) {
  // Two disjoint 2-cycles; cutting the first must still find the second.
  PathSet paths = make_paths({{0, 1}, {1, 0}, {2, 3}, {3, 2}});
  Cdg cdg(paths, all_members(paths), 4);
  CycleFinder finder(cdg);
  std::vector<std::uint32_t> cycle;
  ASSERT_TRUE(finder.next_cycle(cycle));
  for (std::uint32_t p : cdg.alive_paths(cycle.front())) {
    cdg.remove_path(paths, p);
  }
  finder.repair();
  ASSERT_TRUE(finder.next_cycle(cycle));
  for (std::uint32_t p : cdg.alive_paths(cycle.front())) {
    cdg.remove_path(paths, p);
  }
  finder.repair();
  EXPECT_FALSE(finder.next_cycle(cycle));
}

TEST(AssignLayers, AcyclicInputStaysOneLayer) {
  PathSet paths = make_paths({{0, 1, 2}, {0, 2}, {1, 3}});
  LayerResult r = assign_layers_offline(paths, 4, {});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.layers_used, 1);
  EXPECT_EQ(r.cycles_broken, 0U);
}

TEST(AssignLayers, BreaksRingCycle) {
  // The Figure 2 situation: a 5-ring routed clockwise; channels 0..4,
  // each 2-hop path uses (i, i+1 mod 5). The union is the full 5-cycle.
  PathSet paths = make_paths(
      {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  LayerResult r = assign_layers_offline(paths, 5, {});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.layers_used, 2);
  EXPECT_GE(r.cycles_broken, 1U);
  EXPECT_TRUE(layering_is_deadlock_free(paths, r.layer, 5));
}

TEST(AssignLayers, Figure3Example) {
  // Paper Figure 3: channels a=0,b=1,c=2,d=3; p1=bc, p2=abc, p3=cdab;
  // k=2 admits a cover with {p1,p2} and {p3}.
  PathSet paths = make_paths({{1, 2}, {0, 1, 2}, {2, 3, 0, 1}});
  LayerOptions opts;
  opts.max_layers = 2;
  LayerResult r = assign_layers_offline(paths, 4, opts);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.layers_used, 2);
  EXPECT_TRUE(layering_is_deadlock_free(paths, r.layer, 4));
}

TEST(AssignLayers, FailsWhenOneLayerForced) {
  PathSet paths = make_paths({{0, 1}, {1, 0}});
  LayerOptions opts;
  opts.max_layers = 1;
  LayerResult r = assign_layers_offline(paths, 2, opts);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not enough"), std::string::npos);
}

TEST(AssignLayers, WeakestEdgeMovesFewerPaths) {
  // Cycle 0->1->0 where edge (0,1) is induced by 3 paths and (1,0) by 1.
  PathSet paths = make_paths({{0, 1}, {0, 1}, {0, 1}, {1, 0}});
  LayerOptions opts;
  opts.heuristic = CycleHeuristic::kWeakestEdge;
  LayerResult r = assign_layers_offline(paths, 2, opts);
  ASSERT_TRUE(r.ok);
  // The single path inducing the weakest edge moved; the three stayed.
  EXPECT_EQ(r.layer[3], 1);
  EXPECT_EQ(r.layer[0], 0);
  EXPECT_EQ(r.layer[1], 0);
  EXPECT_EQ(r.layer[2], 0);
}

TEST(AssignLayers, HeaviestEdgeMovesMorePaths) {
  PathSet paths = make_paths({{0, 1}, {0, 1}, {0, 1}, {1, 0}});
  LayerOptions opts;
  opts.heuristic = CycleHeuristic::kHeaviestEdge;
  LayerResult r = assign_layers_offline(paths, 2, opts);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.layer[0], 1);
  EXPECT_EQ(r.layer[1], 1);
  EXPECT_EQ(r.layer[2], 1);
  EXPECT_EQ(r.layer[3], 0);
}

TEST(AssignLayers, WeightsDriveWeakestChoice) {
  // Same shape but the single path on (1,0) is heavy (weight 5): the
  // weakest edge is now (0,1) with weight 3.
  PathSet paths;
  paths.add(0, 0, std::vector<ChannelId>{0, 1}, 3);
  paths.add(1, 1, std::vector<ChannelId>{1, 0}, 5);
  LayerOptions opts;
  opts.heuristic = CycleHeuristic::kWeakestEdge;
  LayerResult r = assign_layers_offline(paths, 2, opts);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.layer[0], 1);
  EXPECT_EQ(r.layer[1], 0);
}

TEST(AssignLayers, AllHeuristicsProduceValidCovers) {
  Rng rng(1234);
  for (CycleHeuristic h : {CycleHeuristic::kWeakestEdge,
                           CycleHeuristic::kHeaviestEdge,
                           CycleHeuristic::kFirstEdge}) {
    for (int round = 0; round < 10; ++round) {
      // Random path soup over 12 channel nodes.
      PathSet paths;
      const std::uint32_t num_channels = 12;
      for (int p = 0; p < 30; ++p) {
        std::vector<ChannelId> seq;
        std::vector<bool> used(num_channels, false);
        std::uint32_t len = 2 + static_cast<std::uint32_t>(rng.next_below(5));
        for (std::uint32_t i = 0; i < len; ++i) {
          ChannelId c = static_cast<ChannelId>(rng.next_below(num_channels));
          if (used[c]) break;
          used[c] = true;
          seq.push_back(c);
        }
        if (seq.size() >= 2) {
          paths.add(p, p, seq, 1 + static_cast<std::uint32_t>(rng.next_below(3)));
        }
      }
      LayerOptions opts;
      opts.heuristic = h;
      // A pairwise-conflicting path clique can force up to |P| layers even
      // under an optimal partition, so give the full budget.
      opts.max_layers = static_cast<Layer>(paths.size());
      LayerResult r = assign_layers_offline(paths, num_channels, opts);
      ASSERT_TRUE(r.ok) << to_string(h) << " round " << round;
      EXPECT_TRUE(layering_is_deadlock_free(paths, r.layer, num_channels))
          << to_string(h) << " round " << round;
    }
  }
}

TEST(BalanceLayers, SpreadsOntoEmptyLayersAndStaysAcyclic) {
  // 8 disjoint acyclic paths in layer 0; balancing over 4 layers should
  // spread them (weighted) and preserve acyclicity trivially.
  PathSet paths;
  for (std::uint32_t p = 0; p < 8; ++p) {
    paths.add(p, p, std::vector<ChannelId>{3 * p, 3 * p + 1, 3 * p + 2}, 1);
  }
  std::vector<Layer> layer(8, 0);
  Layer used = balance_layers(paths, layer, 1, 4);
  EXPECT_EQ(used, 4);
  std::vector<int> count(4, 0);
  for (Layer l : layer) {
    ASSERT_LT(l, 4);
    ++count[l];
  }
  for (int c : count) EXPECT_EQ(c, 2);
  EXPECT_TRUE(layering_is_deadlock_free(paths, layer, 24));
}

TEST(BalanceLayers, NoOpWhenAllLayersUsed) {
  PathSet paths = make_paths({{0, 1}, {1, 0}});
  std::vector<Layer> layer{0, 1};
  EXPECT_EQ(balance_layers(paths, layer, 2, 2), 2);
  EXPECT_EQ(layer[0], 0);
  EXPECT_EQ(layer[1], 1);
}

TEST(AssignLayers, OffsetBalanceKeepsCover) {
  // End-to-end: cyclic input, 8 available layers, balancing on.
  PathSet paths = make_paths(
      {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}, {2, 4}, {4, 1}, {1, 3},
       {3, 0}});
  LayerOptions opts;
  opts.balance = true;
  LayerResult r = assign_layers_offline(paths, 5, opts);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(layering_is_deadlock_free(paths, r.layer, 5));
  EXPECT_GE(r.layers_used, 2);
}

}  // namespace
}  // namespace dfsssp
