// Observability subsystem: registry merge determinism across thread counts,
// histogram bucket semantics, trace-span JSON export (validity + nesting),
// Table::write_json, and the snapshot helpers behind the bench run reports.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dfsssp {
namespace {

// ---- minimal JSON validator -------------------------------------------------
// Recursive-descent checker for RFC 8259 structure. No DOM: we only need a
// yes/no so tests can assert every emitter produces loadable JSON without
// the repo growing a parser dependency.

class JsonLint {
 public:
  explicit JsonLint(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }

  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  bool peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool expect(char c) { return peek(c); }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

bool json_valid(const std::string& text) { return JsonLint(text).valid(); }

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string metrics_json(const obs::Snapshot& snap, obs::Kind kind) {
  std::ostringstream out;
  obs::write_metrics_json(out, snap, kind);
  return out.str();
}

TEST(JsonLint, SanityOnItself) {
  EXPECT_TRUE(json_valid("{\"a\": [1, 2.5, -3e4], \"b\": {\"c\": \"d\\n\"}}"));
  EXPECT_TRUE(json_valid("[]"));
  EXPECT_FALSE(json_valid("{\"a\": }"));
  EXPECT_FALSE(json_valid("{\"a\": 1,}"));
  EXPECT_FALSE(json_valid("{'a': 1}"));
  EXPECT_FALSE(json_valid("{\"a\": 1} trailing"));
}

// ---- registry ---------------------------------------------------------------

TEST(ObsRegistry, CounterAccumulatesAndTypeIsChecked) {
  obs::Counter& c = obs::registry().counter("test/basic_counter");
  const std::uint64_t before = c.value();
  c.inc();
  c.add(9);
  EXPECT_EQ(c.value(), before + 10);
  EXPECT_THROW(obs::registry().gauge("test/basic_counter"), std::logic_error);
  EXPECT_THROW(obs::registry().histogram("test/basic_counter", {1, 2}),
               std::logic_error);
}

TEST(ObsRegistry, GaugeHoldsLastValue) {
  obs::Gauge& g = obs::registry().gauge("test/gauge");
  g.set(7);
  g.set(3);
  EXPECT_EQ(g.value(), 3u);
}

TEST(ObsRegistry, HistogramBucketEdges) {
  obs::Histogram& h =
      obs::registry().histogram("test/hist_edges", {10, 20, 40});
  for (std::uint64_t v : {0ull, 10ull, 11ull, 20ull, 21ull, 40ull, 41ull,
                          1000ull}) {
    h.record(v);
  }
  const obs::HistogramValue r = h.value();
  ASSERT_EQ(r.edges, (std::vector<std::uint64_t>{10, 20, 40}));
  ASSERT_EQ(r.counts.size(), 4u);          // three buckets + overflow
  EXPECT_EQ(r.counts[0], 2u);              // 0, 10    (v <= 10)
  EXPECT_EQ(r.counts[1], 2u);              // 11, 20   (10 < v <= 20)
  EXPECT_EQ(r.counts[2], 2u);              // 21, 40   (20 < v <= 40)
  EXPECT_EQ(r.counts[3], 2u);              // 41, 1000 (overflow)
  EXPECT_EQ(r.count, 8u);
  EXPECT_EQ(r.sum, 0u + 10 + 11 + 20 + 21 + 40 + 41 + 1000);
  EXPECT_EQ(r.max, 1000u);
}

TEST(ObsRegistry, RejectsUnsortedHistogramEdges) {
  EXPECT_THROW(obs::registry().histogram("test/bad_edges", {5, 5}),
               std::logic_error);
  EXPECT_THROW(obs::registry().histogram("test/bad_edges2", {7, 3}),
               std::logic_error);
}

TEST(ObsRegistry, ExponentialBucketsAscendStrictly) {
  const auto edges = obs::exponential_buckets(1, 1.3, 12);
  ASSERT_EQ(edges.size(), 12u);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_LT(edges[i - 1], edges[i]);
  }
}

// The registry half of the PR-1 determinism contract: identical work items
// produce identical merged readings at any thread count.
TEST(ObsRegistry, MergeIsThreadCountInvariant) {
  obs::Counter& c = obs::registry().counter("test/merge_counter");
  obs::Histogram& h =
      obs::registry().histogram("test/merge_hist", {4, 16, 64, 256});
  auto run = [&](unsigned threads) {
    const obs::Snapshot before = obs::registry().snapshot();
    ExecContext exec(threads);
    parallel_for(exec, 997, [&](std::size_t i) {
      c.add(i % 5);
      h.record((i * i) % 300);
    });
    return obs::snapshot_delta(obs::registry().snapshot(), before);
  };
  const obs::Snapshot one = run(1);
  const obs::Snapshot two = run(2);
  const obs::Snapshot eight = run(8);
  const std::string a = metrics_json(one, obs::Kind::kDeterministic);
  EXPECT_EQ(a, metrics_json(two, obs::Kind::kDeterministic));
  EXPECT_EQ(a, metrics_json(eight, obs::Kind::kDeterministic));
  EXPECT_EQ(one.at("test/merge_counter").value,
            eight.at("test/merge_counter").value);
  EXPECT_EQ(one.at("test/merge_hist").hist.counts,
            eight.at("test/merge_hist").hist.counts);
}

TEST(ObsRegistry, SnapshotDeltaSubtractsCountersKeepsGauges) {
  obs::Counter& c = obs::registry().counter("test/delta_counter");
  obs::Gauge& g = obs::registry().gauge("test/delta_gauge");
  c.add(5);
  g.set(11);
  const obs::Snapshot before = obs::registry().snapshot();
  c.add(3);
  g.set(13);
  const obs::Snapshot delta =
      obs::snapshot_delta(obs::registry().snapshot(), before);
  EXPECT_EQ(delta.at("test/delta_counter").value, 3u);
  EXPECT_EQ(delta.at("test/delta_gauge").value, 13u);
}

TEST(ObsRegistry, MetricsJsonIsValid) {
  obs::registry().counter("test/json_counter").add(2);
  obs::registry().histogram("test/json_hist", {1, 2, 3}).record(2);
  obs::registry().timing_histogram("test/json_timing").record(1234);
  const obs::Snapshot snap = obs::registry().snapshot();
  const std::string det = metrics_json(snap, obs::Kind::kDeterministic);
  const std::string timing = metrics_json(snap, obs::Kind::kTiming);
  EXPECT_TRUE(json_valid(det)) << det;
  EXPECT_TRUE(json_valid(timing)) << timing;
  EXPECT_NE(det.find("\"test/json_counter\": 2"), std::string::npos);
  EXPECT_NE(timing.find("test/json_timing"), std::string::npos);
  // Kinds are disjoint sections.
  EXPECT_EQ(det.find("test/json_timing"), std::string::npos);
  EXPECT_EQ(timing.find("test/json_counter"), std::string::npos);
}

TEST(ObsRegistry, ScopedTimerRecordsIntoTimingHistogram) {
  const obs::Snapshot before = obs::registry().snapshot();
  {
    ScopedTimer t("test/scoped_timer_ns");
    EXPECT_GE(t.elapsed_ns(), 0u);
  }
  const obs::Snapshot after = obs::registry().snapshot();
  EXPECT_EQ(after.at("test/scoped_timer_ns").hist.count,
            (before.count("test/scoped_timer_ns")
                 ? before.at("test/scoped_timer_ns").hist.count
                 : 0) +
                1);
  EXPECT_EQ(after.at("test/scoped_timer_ns").kind, obs::Kind::kTiming);
}

// ---- tracing ----------------------------------------------------------------

struct ParsedSpan {
  std::string name;
  double ts = 0, dur = 0;
};

std::vector<ParsedSpan> parse_spans(const std::string& text) {
  // The exporter writes one event object per line; scrape name/ts/dur.
  std::vector<ParsedSpan> spans;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t name_at = line.find("\"name\": \"");
    const std::size_t ts_at = line.find("\"ts\": ");
    const std::size_t dur_at = line.find("\"dur\": ");
    if (name_at == std::string::npos || ts_at == std::string::npos ||
        dur_at == std::string::npos) {
      continue;
    }
    ParsedSpan s;
    const std::size_t name_from = name_at + 9;
    s.name = line.substr(name_from, line.find('"', name_from) - name_from);
    s.ts = std::strtod(line.c_str() + ts_at + 6, nullptr);
    s.dur = std::strtod(line.c_str() + dur_at + 7, nullptr);
    spans.push_back(std::move(s));
  }
  return spans;
}

TEST(ObsTrace, ChromeTraceIsValidJsonAndSpansNest) {
#ifdef DFS_OBS_NO_TRACING
  GTEST_SKIP() << "spans compiled out (DFS_OBS_TRACING=OFF)";
#endif
  const std::string path = "test_obs_trace.json";
  obs::start_tracing(path);
  ASSERT_TRUE(obs::tracing_active());
  {
    TRACE_SPAN("outer");
    { TRACE_SPAN("inner"); }
    { TRACE_SPAN("inner2"); }
  }
  const std::size_t spans = obs::stop_tracing();
  EXPECT_FALSE(obs::tracing_active());
  EXPECT_EQ(spans, 3u);

  const std::string text = slurp(path);
  EXPECT_TRUE(json_valid(text)) << text;
  const std::vector<ParsedSpan> parsed = parse_spans(text);
  ASSERT_EQ(parsed.size(), 3u);

  const auto find = [&](const std::string& name) {
    for (const ParsedSpan& s : parsed) {
      if (s.name == name) return s;
    }
    ADD_FAILURE() << "span not found: " << name;
    return ParsedSpan{};
  };
  const ParsedSpan outer = find("outer");
  const ParsedSpan inner = find("inner");
  const ParsedSpan inner2 = find("inner2");
  // Lexical nesting must show as interval containment.
  EXPECT_LE(outer.ts, inner.ts);
  EXPECT_GE(outer.ts + outer.dur, inner.ts + inner.dur);
  EXPECT_LE(outer.ts, inner2.ts);
  EXPECT_GE(outer.ts + outer.dur, inner2.ts + inner2.dur);
  // inner ran before inner2.
  EXPECT_LE(inner.ts, inner2.ts);
  std::remove(path.c_str());
}

TEST(ObsTrace, SpansFromPoolWorkersAreCollected) {
#ifdef DFS_OBS_NO_TRACING
  GTEST_SKIP() << "spans compiled out (DFS_OBS_TRACING=OFF)";
#endif
  const std::string path = "test_obs_trace_pool.json";
  obs::start_tracing(path);
  ExecContext exec(4);
  parallel_for(exec, 32, [](std::size_t) { TRACE_SPAN("pool_item"); });
  const std::size_t spans = obs::stop_tracing();
  EXPECT_EQ(spans, 32u);
  const std::string text = slurp(path);
  EXPECT_TRUE(json_valid(text));
  std::remove(path.c_str());
}

TEST(ObsTrace, InactiveSessionsAreFree) {
  ASSERT_FALSE(obs::tracing_active());
  { TRACE_SPAN("dropped"); }
  EXPECT_EQ(obs::stop_tracing(), 0u);  // no session: no-op
}

// ---- Table::write_json ------------------------------------------------------

TEST(TableJson, WriteJsonIsValidAndRoundTrips) {
  Table t("Figure X: \"quoted\"", {"links", "LASH", "DFSSSP"});
  t.row().cell(140u).cell("1/2.00/3").cell("4/5.00/6");
  t.row().cell(700u).cell("-");  // short row pads
  std::ostringstream out;
  t.write_json(out);
  const std::string text = out.str();
  EXPECT_TRUE(json_valid(text)) << text;
  EXPECT_NE(text.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(text.find("[\"140\", \"1/2.00/3\", \"4/5.00/6\"]"),
            std::string::npos);
  EXPECT_NE(text.find("[\"700\", \"-\", \"\"]"), std::string::npos);

  const std::string path = "test_obs_table.json";
  t.write_json(path);
  EXPECT_TRUE(json_valid(slurp(path)));
  std::remove(path.c_str());
}

TEST(TableJson, EmptyTableIsValid) {
  Table t("empty", {"a", "b"});
  std::ostringstream out;
  t.write_json(out);
  EXPECT_TRUE(json_valid(out.str())) << out.str();
}

}  // namespace
}  // namespace dfsssp
