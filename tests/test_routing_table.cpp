#include "routing/table.hpp"

#include <gtest/gtest.h>

#include "topology/generators.hpp"

namespace dfsssp {
namespace {

/// path-of-3 fixture: sw0 - sw1 - sw2, one terminal each.
struct Fixture {
  Topology topo = make_path(3, 1);
  RoutingTable table{topo.net};
  NodeId sw(std::uint32_t i) { return topo.net.switch_by_index(i); }
  NodeId t(std::uint32_t i) { return topo.net.terminal_by_index(i); }
  ChannelId link(NodeId a, NodeId b) {
    for (ChannelId c : topo.net.out_switch_channels(a)) {
      if (topo.net.channel(c).dst == b) return c;
    }
    return kInvalidChannel;
  }
};

TEST(RoutingTableTest, DefaultsAreInvalid) {
  Fixture f;
  EXPECT_EQ(f.table.next(f.sw(0), f.t(2)), kInvalidChannel);
  EXPECT_EQ(f.table.layer(f.sw(0), f.t(2)), 0);
  EXPECT_EQ(f.table.num_layers(), 1);
}

TEST(RoutingTableTest, ExtractPathWalksForwarding) {
  Fixture f;
  f.table.set_next(f.sw(0), f.t(2), f.link(f.sw(0), f.sw(1)));
  f.table.set_next(f.sw(1), f.t(2), f.link(f.sw(1), f.sw(2)));
  std::vector<ChannelId> seq;
  ASSERT_TRUE(f.table.extract_path(f.topo.net, f.sw(0), f.t(2), seq));
  ASSERT_EQ(seq.size(), 2U);
  EXPECT_EQ(f.topo.net.channel(seq[0]).src, f.sw(0));
  EXPECT_EQ(f.topo.net.channel(seq[1]).dst, f.sw(2));
  EXPECT_EQ(f.table.path_hops(f.topo.net, f.sw(0), f.t(2)), 2);
}

TEST(RoutingTableTest, ExtractPathEmptyForLocalDestination) {
  Fixture f;
  std::vector<ChannelId> seq{123};
  ASSERT_TRUE(f.table.extract_path(f.topo.net, f.sw(1), f.t(1), seq));
  EXPECT_TRUE(seq.empty());  // destination attached to the start switch
}

TEST(RoutingTableTest, DeadEndDetected) {
  Fixture f;
  f.table.set_next(f.sw(0), f.t(2), f.link(f.sw(0), f.sw(1)));
  // sw1 has no entry for t2 -> dead end.
  std::vector<ChannelId> seq;
  EXPECT_FALSE(f.table.extract_path(f.topo.net, f.sw(0), f.t(2), seq));
  EXPECT_EQ(f.table.path_hops(f.topo.net, f.sw(0), f.t(2)), -1);
}

TEST(RoutingTableTest, ForwardingLoopDetected) {
  Fixture f;
  f.table.set_next(f.sw(0), f.t(2), f.link(f.sw(0), f.sw(1)));
  f.table.set_next(f.sw(1), f.t(2), f.link(f.sw(1), f.sw(0)));  // bounce back
  std::vector<ChannelId> seq;
  EXPECT_FALSE(f.table.extract_path(f.topo.net, f.sw(0), f.t(2), seq));
}

TEST(RoutingTableTest, LayerStorageIsPerSourceSwitch) {
  Fixture f;
  f.table.set_num_layers(4);
  f.table.set_layer(f.sw(0), f.t(2), 3);
  f.table.set_layer(f.sw(1), f.t(2), 1);
  EXPECT_EQ(f.table.layer(f.sw(0), f.t(2)), 3);
  EXPECT_EQ(f.table.layer(f.sw(1), f.t(2)), 1);
  EXPECT_EQ(f.table.layer(f.sw(0), f.t(1)), 0);  // untouched slot
  EXPECT_EQ(f.table.num_layers(), 4);
}

TEST(RoutingTableTest, RejectsWrongChannelSource) {
  // A forwarding entry whose channel does not start at the switch is
  // reported as broken by extract_path, not followed.
  Fixture f;
  f.table.set_next(f.sw(0), f.t(2), f.link(f.sw(1), f.sw(2)));
  std::vector<ChannelId> seq;
  EXPECT_FALSE(f.table.extract_path(f.topo.net, f.sw(0), f.t(2), seq));
}

}  // namespace
}  // namespace dfsssp
