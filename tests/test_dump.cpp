#include "routing/dump.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "routing/collect.hpp"
#include "routing/dfsssp.hpp"
#include "routing/verify.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

TEST(Dump, RoundTripPreservesForwardingAndLayers) {
  Rng rng(77);
  Topology topo = make_random(10, 2, 24, 8, rng);
  RouteResponse out = DfssspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);

  std::ostringstream os;
  write_forwarding_dump(topo.net, out.table, os);
  std::istringstream is(os.str());
  RoutingTable loaded = read_forwarding_dump(topo.net, is);

  EXPECT_EQ(loaded.num_layers(), out.table.num_layers());
  for (NodeId s : topo.net.switches()) {
    for (NodeId t : topo.net.terminals()) {
      if (topo.net.switch_of(t) == s) continue;
      EXPECT_EQ(loaded.next(s, t), out.table.next(s, t));
      EXPECT_EQ(loaded.layer(s, t), out.table.layer(s, t));
    }
  }
  EXPECT_TRUE(verify_routing(topo.net, loaded).connected());
  EXPECT_TRUE(routing_is_deadlock_free(topo.net, loaded));
}

TEST(Dump, RoundTripWithParallelLinks) {
  // Parallel links stress the (neighbor, index) channel identification.
  Network net;
  NodeId a = net.add_switch("a");
  NodeId b = net.add_switch("b");
  net.add_link(a, b);
  net.add_link(a, b);
  net.add_link(a, b);
  net.add_terminal(a, "ta");
  net.add_terminal(b, "tb");
  net.freeze();
  Topology topo{"par", std::move(net), {}};
  RouteResponse out = DfssspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);

  std::ostringstream os;
  write_forwarding_dump(topo.net, out.table, os);
  std::istringstream is(os.str());
  RoutingTable loaded = read_forwarding_dump(topo.net, is);
  for (NodeId s : topo.net.switches()) {
    for (NodeId t : topo.net.terminals()) {
      if (topo.net.switch_of(t) == s) continue;
      EXPECT_EQ(loaded.next(s, t), out.table.next(s, t));
    }
  }
}

TEST(Dump, RejectsMalformedInput) {
  Topology topo = make_ring(4, 1);
  auto parse = [&](const std::string& text) {
    std::istringstream is(text);
    return read_forwarding_dump(topo.net, is);
  };
  EXPECT_THROW(parse("lft nosuch t0 sw1 0\n"), std::runtime_error);
  EXPECT_THROW(parse("lft sw0 t1 sw1 9\n"), std::runtime_error);  // bad slot
  EXPECT_THROW(parse("frob x\n"), std::runtime_error);
  EXPECT_THROW(parse("layers 0\n"), std::runtime_error);
  EXPECT_THROW(parse("sl sw0 t1 999\n"), std::runtime_error);
  EXPECT_THROW(parse("lft t0 t1 sw1 0\n"), std::runtime_error);  // not a switch
  // Layer counts are validated against the IB VL limit before any sl line
  // is trusted, and sl lines may not precede the declaration they need.
  EXPECT_THROW(parse("layers 17\n"), std::runtime_error);
  EXPECT_THROW(parse("layers 2\nlayers 2\n"), std::runtime_error);
  EXPECT_THROW(parse("sl sw0 t1 0\nlayers 2\n"), std::runtime_error);
  EXPECT_THROW(parse("layers 2\nsl sw0 t1 2\n"), std::runtime_error);
  EXPECT_NO_THROW(parse("layers 16\n"));
}

TEST(Dump, ErrorsCarrySourceAndLine) {
  Topology topo = make_ring(4, 1);
  std::istringstream is("layers 2\nlft sw0 t1 sw1 9\n");
  try {
    read_forwarding_dump(topo.net, is, "fabric.dump");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fabric.dump:2:"), std::string::npos)
        << e.what();
  }
  // The path-based reader names the file (and reports a missing one).
  EXPECT_THROW(read_forwarding_dump_path(topo.net, "/nonexistent/x.dump"),
               std::runtime_error);
}

TEST(Dump, StatsCountEntriesAndAnomalies) {
  Topology topo = make_ring(4, 1);
  std::istringstream is(
      "layers 2\n"
      "lft sw0 t1 sw1 0\n"
      "lft sw0 t1 sw3 0\n"  // overwrites the previous line
      "lft sw0 t0 sw1 0\n"  // t0 is local to sw0: dangling
      "sl sw0 t1 1\n"
      "sl sw0 t1 0\n"
      "sl sw0 t2 1\n");
  DumpStats stats;
  RoutingTable table = read_forwarding_dump(topo.net, is, "dump", &stats);
  EXPECT_EQ(stats.lft_entries, 3u);
  EXPECT_EQ(stats.sl_entries, 3u);
  EXPECT_EQ(stats.duplicate_lft, 1u);
  EXPECT_EQ(stats.duplicate_sl, 1u);
  EXPECT_EQ(stats.local_lft, 1u);
  // Later lines win, as on a real fabric reload.
  EXPECT_EQ(table.layer(topo.net.switch_by_index(0),
                        topo.net.terminal_by_index(1)),
            0);
}

TEST(Dump, CommentsAndPartialTablesAccepted) {
  Topology topo = make_ring(4, 1);
  std::istringstream is("# comment only\nlayers 2\n");
  RoutingTable table = read_forwarding_dump(topo.net, is);
  EXPECT_EQ(table.num_layers(), 2);
  // Entries default to invalid; extraction reports broken paths rather
  // than crashing.
  std::vector<ChannelId> seq;
  EXPECT_FALSE(table.extract_path(topo.net, topo.net.switch_by_index(0),
                                  topo.net.terminal_by_index(2), seq));
}

}  // namespace
}  // namespace dfsssp
