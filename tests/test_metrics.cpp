#include "topology/metrics.hpp"

#include <gtest/gtest.h>

#include "topology/generators.hpp"

namespace dfsssp {
namespace {

TEST(Metrics, RingValues) {
  Topology topo = make_ring(6, 2);
  NetworkMetrics m = compute_metrics(topo.net);
  EXPECT_EQ(m.diameter, 3U);
  EXPECT_EQ(m.min_degree, 2U);
  EXPECT_EQ(m.max_degree, 2U);
  EXPECT_DOUBLE_EQ(m.avg_degree, 2.0);
  EXPECT_EQ(m.num_links, 6U);
  EXPECT_EQ(m.min_terminals, 2U);
  EXPECT_EQ(m.max_terminals, 2U);
  // Ring of 6: distances 1,1,2,2,3 from each node -> avg 1.8.
  EXPECT_NEAR(m.avg_path_length, 1.8, 1e-9);
}

TEST(Metrics, SingleSwitch) {
  Topology topo = make_single_switch(8);
  NetworkMetrics m = compute_metrics(topo.net);
  EXPECT_EQ(m.diameter, 0U);
  EXPECT_EQ(m.num_links, 0U);
  EXPECT_DOUBLE_EQ(m.avg_path_length, 0.0);
}

TEST(Metrics, TorusDiameter) {
  std::uint32_t dims[2] = {4, 4};
  Topology topo = make_torus(dims, 1, true);
  EXPECT_EQ(compute_metrics(topo.net).diameter, 4U);  // 2 + 2
  Topology mesh = make_torus(dims, 1, false);
  EXPECT_EQ(compute_metrics(mesh.net).diameter, 6U);  // 3 + 3
}

TEST(Metrics, KaryNTreeDiameter) {
  // Leaf to leaf under a different root path: up n-1, down n-1... the
  // switch-graph diameter of a k-ary n-tree is 2(n-1).
  Topology topo = make_kary_ntree(4, 3);
  EXPECT_EQ(compute_metrics(topo.net).diameter, 4U);
}

TEST(Metrics, BisectionWidthRing) {
  // Any balanced cut of a ring crosses exactly 2 links.
  Topology topo = make_ring(8, 2);
  Rng rng(1);
  EXPECT_EQ(estimate_bisection_width(topo.net, rng), 2U);
}

TEST(Metrics, BisectionWidthClos) {
  // 4 leaves x 2 spines, 1 link each: splitting the leaves 2/2 cuts 8 of
  // the 8 links... each side keeps its links to both spines; crossing
  // links = leaf-spine links from leaves to spines on the "other side":
  // spines carry no terminals so the optimizer parks them for free; the
  // minimum balanced cut is 4.
  Topology topo = make_clos2(4, 2, 1, 4);
  Rng rng(2);
  EXPECT_LE(estimate_bisection_width(topo.net, rng), 4U);
  EXPECT_GE(estimate_bisection_width(topo.net, rng), 2U);
}

TEST(Metrics, CeilingBoundsSimulatedEbb) {
  // The structural ceiling must upper-bound what any routing achieves.
  Topology topo = make_clos2(4, 1, 1, 4);  // heavy oversubscription
  Rng rng(3);
  double ceiling = bisection_bandwidth_ceiling(topo.net, rng);
  EXPECT_LE(ceiling, 1.0);
  EXPECT_GT(ceiling, 0.0);
}

TEST(Metrics, DeimosStandInShape) {
  Topology topo = make_deimos();
  NetworkMetrics m = compute_metrics(topo.net);
  EXPECT_GE(m.diameter, 4U);  // d1 leaf chip to d3 leaf chip via two hops
                              // of inter-director links and internal spines
  EXPECT_EQ(m.min_terminals, 0U);  // spine chips host no terminals
  EXPECT_GT(m.max_terminals, 0U);
}

}  // namespace
}  // namespace dfsssp
