// Frame layer: length-prefixed framing over byte streams.
//
// The contracts under test (ISSUE: flight recorder / frame hardening):
//   * a frame split into arbitrary byte dribbles reassembles — short reads
//     of the length prefix and of the payload both resume;
//   * EINTR during a blocking read resumes instead of failing the frame;
//   * an oversized frame is drained fully and reported kOversized, and the
//     stream keeps framing afterwards;
//   * EOF between frames is kEof, EOF mid-frame is kError;
//   * the stop predicate turns a quiet stream into kStopped after the
//     drain-grace ticks.
#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>

#include "common/frame.hpp"

namespace dfsssp {
namespace {

struct Pair {
  int reader = -1;
  int writer = -1;
  Pair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    reader = fds[0];
    writer = fds[1];
  }
  ~Pair() {
    if (reader >= 0) ::close(reader);
    if (writer >= 0) ::close(writer);
  }
  void close_writer() {
    ::close(writer);
    writer = -1;
  }
};

/// Raw little-endian length prefix, for hand-built wire bytes.
std::string length_prefix(std::uint32_t len) {
  std::string out;
  out.push_back(static_cast<char>(len & 0xFF));
  out.push_back(static_cast<char>((len >> 8) & 0xFF));
  out.push_back(static_cast<char>((len >> 16) & 0xFF));
  out.push_back(static_cast<char>((len >> 24) & 0xFF));
  return out;
}

bool write_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

TEST(Frame, RoundTripsIncludingEmptyPayload) {
  Pair p;
  ASSERT_TRUE(write_frame(p.writer, "hello frame"));
  ASSERT_TRUE(write_frame(p.writer, ""));
  ASSERT_TRUE(write_frame(p.writer, std::string(70000, 'x')));

  std::string payload;
  ASSERT_EQ(read_frame(p.reader, payload), FrameResult::kFrame);
  EXPECT_EQ(payload, "hello frame");
  ASSERT_EQ(read_frame(p.reader, payload), FrameResult::kFrame);
  EXPECT_EQ(payload, "");
  ASSERT_EQ(read_frame(p.reader, payload), FrameResult::kFrame);
  EXPECT_EQ(payload, std::string(70000, 'x'));

  p.close_writer();
  EXPECT_EQ(read_frame(p.reader, payload), FrameResult::kEof);
}

TEST(Frame, ReassemblesByteDribbles) {
  // The frame arrives one byte at a time — every read of the length prefix
  // and the payload is short. read_frame must resume each of them.
  Pair p;
  const std::string want = "dribbled-payload";
  std::string wire = length_prefix(static_cast<std::uint32_t>(want.size()));
  wire += want;

  std::thread writer([&] {
    for (char c : wire) {
      ASSERT_TRUE(write_all(p.writer, std::string_view(&c, 1)));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::string payload;
  EXPECT_EQ(read_frame(p.reader, payload), FrameResult::kFrame);
  EXPECT_EQ(payload, want);
  writer.join();
}

TEST(Frame, ResumesAfterEintr) {
  // A no-op handler installed without SA_RESTART makes blocked reads fail
  // with EINTR; read_frame must retry, not surface an error.
  struct sigaction sa {};
  struct sigaction old {};
  sa.sa_handler = [](int) {};
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  Pair p;
  const std::string want = "signal-proof";
  std::string wire = length_prefix(static_cast<std::uint32_t>(want.size()));
  wire += want;
  // Prefix plus half the payload now: the reader gets past poll() and
  // blocks inside the payload's read_exact, where the signals land.
  const std::size_t half = 4 + want.size() / 2;
  ASSERT_TRUE(write_all(p.writer, std::string_view(wire).substr(0, half)));

  std::atomic<bool> reading{false};
  const pthread_t self = ::pthread_self();
  std::thread interrupter([&] {
    while (!reading.load()) std::this_thread::yield();
    // Pepper the blocked reader, then let the rest of the frame through.
    for (int i = 0; i < 5; ++i) {
      ::pthread_kill(self, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(write_all(p.writer, std::string_view(wire).substr(half)));
  });

  reading.store(true);
  std::string payload;
  EXPECT_EQ(read_frame(p.reader, payload), FrameResult::kFrame);
  EXPECT_EQ(payload, want);
  interrupter.join();
  ::sigaction(SIGUSR1, &old, nullptr);
}

TEST(Frame, OversizedFrameIsDrainedAndStreamSurvives) {
  // Length prefix beyond kMaxFramePayload: the reader must consume the
  // whole body (else the stream desyncs) and report kOversized, then frame
  // normally again. The body is bigger than a socketpair buffer, so the
  // writer thread blocks until the reader drains — which is the point.
  Pair p;
  const std::uint32_t huge = kMaxFramePayload + 1;
  std::thread writer([&] {
    ASSERT_TRUE(write_all(p.writer, length_prefix(huge)));
    ASSERT_TRUE(write_all(p.writer, std::string(huge, 'z')));
    ASSERT_TRUE(write_frame(p.writer, "still-framed"));
  });

  std::string payload;
  EXPECT_EQ(read_frame(p.reader, payload), FrameResult::kOversized);
  EXPECT_EQ(read_frame(p.reader, payload), FrameResult::kFrame);
  EXPECT_EQ(payload, "still-framed");
  writer.join();
}

TEST(Frame, EofMidFrameIsErrorNotEof) {
  // Clean close between frames is kEof (tested above); a writer dying
  // mid-frame must be distinguishable.
  {
    // ... after only part of the length prefix:
    Pair p;
    ASSERT_TRUE(write_all(p.writer, length_prefix(8).substr(0, 2)));
    p.close_writer();
    std::string payload;
    EXPECT_EQ(read_frame(p.reader, payload), FrameResult::kError);
  }
  {
    // ... after the prefix but only part of the payload:
    Pair p;
    ASSERT_TRUE(write_all(p.writer, length_prefix(8) + "1234"));
    p.close_writer();
    std::string payload;
    EXPECT_EQ(read_frame(p.reader, payload), FrameResult::kError);
  }
  {
    // ... mid-body of an oversized frame: still kError, not kOversized.
    Pair p;
    ASSERT_TRUE(write_all(p.writer, length_prefix(kMaxFramePayload + 1)));
    ASSERT_TRUE(write_all(p.writer, "partial body"));
    p.close_writer();
    std::string payload;
    EXPECT_EQ(read_frame(p.reader, payload), FrameResult::kError);
  }
}

TEST(Frame, StopPredicateEndsAQuietWait) {
  Pair p;
  std::string payload;
  EXPECT_EQ(read_frame(p.reader, payload, [] { return true; }),
            FrameResult::kStopped);
}

TEST(Frame, StopGraceStillDeliversAnInFlightFrame) {
  // A frame already on the wire when stop turns true must still be served
  // (that is what the grace ticks are for).
  Pair p;
  ASSERT_TRUE(write_frame(p.writer, "in-flight"));
  std::string payload;
  EXPECT_EQ(read_frame(p.reader, payload, [] { return true; }),
            FrameResult::kFrame);
  EXPECT_EQ(payload, "in-flight");
}

}  // namespace
}  // namespace dfsssp
