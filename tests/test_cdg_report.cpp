#include "cdg/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "cdg/cdg.hpp"
#include "routing/collect.hpp"
#include "routing/dfsssp.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

TEST(CdgReport, StatsForHandBuiltLayers) {
  PathSet paths;
  paths.add(0, 0, std::vector<ChannelId>{0, 1, 2}, 2);  // layer 0
  paths.add(1, 1, std::vector<ChannelId>{1, 2}, 1);     // layer 0
  paths.add(2, 2, std::vector<ChannelId>{2, 0}, 3);     // layer 1
  std::vector<Layer> layer{0, 0, 1};
  auto stats = cdg_layer_stats(paths, layer, 3);
  ASSERT_EQ(stats.size(), 2U);
  EXPECT_EQ(stats[0].paths, 2U);
  EXPECT_EQ(stats[0].weight, 3U);
  EXPECT_EQ(stats[0].nodes, 3U);
  EXPECT_EQ(stats[0].edges, 2U);          // (0,1), (1,2)
  EXPECT_EQ(stats[0].max_edge_weight, 3U);  // (1,2) carries both paths
  EXPECT_EQ(stats[1].paths, 1U);
  EXPECT_EQ(stats[1].edges, 1U);
  EXPECT_EQ(stats[1].max_edge_weight, 3U);
}

TEST(CdgReport, StatsMatchRoutedLayers) {
  Topology topo = make_ring(6, 2);
  RouteResponse out = DfssspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  PathSet paths = collect_paths(topo.net, out.table);
  std::vector<Layer> layers = collect_layers(topo.net, out.table, paths);
  auto stats = cdg_layer_stats(paths, layers,
                               static_cast<std::uint32_t>(topo.net.num_channels()));
  std::uint64_t total_paths = 0;
  for (const auto& s : stats) total_paths += s.paths;
  EXPECT_EQ(total_paths, paths.size());
  EXPECT_GE(stats.size(), out.stats.layers_used);
}

TEST(CdgReport, DotExportNamesChannels) {
  Topology topo = make_ring(5, 1);
  RouteResponse out = DfssspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  PathSet paths = collect_paths(topo.net, out.table);
  std::vector<Layer> layers = collect_layers(topo.net, out.table, paths);
  std::ostringstream os;
  write_cdg_dot(topo.net, paths, layers, 0, os);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph cdg_layer_0"), std::string::npos);
  // Channel nodes are named "<src>-><dst>"; some ring channel must appear.
  EXPECT_NE(dot.find("\"sw"), std::string::npos);
  EXPECT_NE(dot.find("->sw"), std::string::npos);
  EXPECT_NE(dot.find("label="), std::string::npos);
}

TEST(CdgReport, EmptyLayerReported) {
  PathSet paths;
  paths.add(0, 0, std::vector<ChannelId>{0, 1}, 1);
  paths.add(1, 1, std::vector<ChannelId>{1, 0}, 1);
  std::vector<Layer> layer{0, 2};  // layer 1 unused
  auto stats = cdg_layer_stats(paths, layer, 2);
  ASSERT_EQ(stats.size(), 3U);
  EXPECT_EQ(stats[1].paths, 0U);
  EXPECT_EQ(stats[1].edges, 0U);
}

}  // namespace
}  // namespace dfsssp
