#include "common/narrow.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>

namespace dfsssp {
namespace {

TEST(Narrow, InRangeValuesRoundTrip) {
  EXPECT_EQ(checked_narrow<std::uint32_t>(std::uint64_t{0}, "t"), 0u);
  EXPECT_EQ(checked_narrow<std::uint32_t>(std::uint64_t{41}, "t"), 41u);
  EXPECT_EQ(
      checked_narrow<std::uint32_t>(std::uint64_t{0xFFFFFFFFull}, "t"),
      0xFFFFFFFFu);
  EXPECT_EQ(checked_u32(std::size_t{123456}, "t"), 123456u);
}

TEST(Narrow, OverflowThrowsWithContext) {
  const std::uint64_t too_big = std::uint64_t{1} << 32;
  EXPECT_THROW(checked_u32(too_big, "csr offset"), std::overflow_error);
  try {
    checked_u32(too_big, "csr offset");
    FAIL() << "expected overflow_error";
  } catch (const std::overflow_error& e) {
    EXPECT_NE(std::string(e.what()).find("csr offset"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("4294967296"), std::string::npos);
  }
}

TEST(Narrow, SignednessIsValueCorrect) {
  // std::in_range semantics: negative values never fit unsigned targets,
  // and large unsigned values never fit a smaller signed target.
  EXPECT_THROW(checked_u32(std::int64_t{-1}, "t"), std::overflow_error);
  EXPECT_THROW(checked_narrow<std::int32_t>(std::uint64_t{0x80000000ull}, "t"),
               std::overflow_error);
  EXPECT_EQ(checked_narrow<std::int32_t>(std::int64_t{-5}, "t"), -5);
}

TEST(Narrow, WordSplitIsIntentionalTruncation) {
  const std::uint64_t v = 0xDEADBEEF00C0FFEEull;
  EXPECT_EQ(lo_u32(v), 0x00C0FFEEu);
  EXPECT_EQ(hi_u32(v), 0xDEADBEEFu);
  EXPECT_EQ((std::uint64_t{hi_u32(v)} << 32) | lo_u32(v), v);
}

TEST(Narrow, UsableInConstantExpressions) {
  static_assert(checked_u32(std::uint64_t{7}, "cx") == 7u);
  static_assert(lo_u32(0x100000002ull) == 2u);
  static_assert(hi_u32(0x100000002ull) == 1u);
}

}  // namespace
}  // namespace dfsssp
