// Cross-module integration: every routing engine against every topology
// family, checking the invariants each engine advertises.
#include <gtest/gtest.h>

#include "routing/collect.hpp"
#include "routing/router.hpp"
#include "routing/verify.hpp"
#include "sim/congestion.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

std::vector<Topology> small_zoo() {
  std::vector<Topology> zoo;
  zoo.push_back(make_single_switch(8));
  zoo.push_back(make_path(4, 2));
  zoo.push_back(make_ring(7, 2));
  std::uint32_t dims[2] = {3, 4};
  zoo.push_back(make_torus(dims, 1, true));
  zoo.push_back(make_torus(dims, 1, false));
  zoo.push_back(make_hypercube(3, 1));
  zoo.push_back(make_kary_ntree(3, 2));
  std::uint32_t ms[2] = {4, 4};
  std::uint32_t ws[2] = {2, 2};
  zoo.push_back(make_xgft(2, ms, ws));
  zoo.push_back(make_kautz(2, 2, 12));
  Rng rng(123);
  zoo.push_back(make_random(12, 2, 30, 8, rng));
  zoo.push_back(make_clos2(4, 2, 1, 4));
  zoo.push_back(make_dragonfly(2, 2, 1, 3));
  return zoo;
}

TEST(Integration, EveryEngineOnEveryTopology) {
  auto routers = make_all_routers();
  for (const Topology& topo : small_zoo()) {
    for (const auto& router : routers) {
      RouteResponse out = router->route(RouteRequest(topo));
      if (!out.ok) {
        // Failing is allowed (fat-tree on a ring, DOR without coords), but
        // must come with an explanation.
        EXPECT_FALSE(out.error.empty())
            << router->name() << " on " << topo.name;
        continue;
      }
      VerifyReport report = verify_routing(topo.net, out.table);
      EXPECT_TRUE(report.connected())
          << router->name() << " on " << topo.name << ": " << report.broken
          << " broken paths";
      if (router->deadlock_free()) {
        EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table))
            << router->name() << " claims deadlock freedom on " << topo.name;
      }
    }
  }
}

TEST(Integration, ShortestPathEnginesAreMinimal) {
  auto zoo = small_zoo();
  for (const Topology& topo : zoo) {
    for (const char* name : {"MinHop", "SSSP", "DFSSSP", "LASH"}) {
      for (const auto& router : make_all_routers()) {
        if (router->name() != name) continue;
        RouteResponse out = router->route(RouteRequest(topo));
        if (!out.ok) continue;
        VerifyReport report = verify_routing(topo.net, out.table);
        EXPECT_TRUE(report.minimal())
            << name << " on " << topo.name << ": " << report.non_minimal
            << " of " << report.total_paths << " paths non-minimal";
      }
    }
  }
}

TEST(Integration, SsspAndDfssspShareForwardingPorts) {
  for (const Topology& topo : small_zoo()) {
    RouteResponse sssp, dfsssp;
    for (const auto& router : make_all_routers()) {
      if (router->name() == "SSSP") sssp = router->route(RouteRequest(topo));
      if (router->name() == "DFSSSP") dfsssp = router->route(RouteRequest(topo));
    }
    if (!sssp.ok || !dfsssp.ok) continue;
    for (NodeId s : topo.net.switches()) {
      for (NodeId t : topo.net.terminals()) {
        if (topo.net.switch_of(t) == s) continue;
        ASSERT_EQ(sssp.table.next(s, t), dfsssp.table.next(s, t))
            << topo.name;
      }
    }
  }
}

TEST(Integration, EbbComparableAcrossEngines) {
  // On an oversubscribed Clos the global balancers (SSSP/DFSSSP) must not
  // lose to MinHop by more than noise, and every eBB lies in (0, 1].
  Topology topo = make_clos2(6, 3, 1, 6);
  Rng rng(99);
  RankMap map = RankMap::round_robin(topo.net, 36);
  double minhop_ebb = 0, dfsssp_ebb = 0;
  for (const auto& router : make_all_routers()) {
    RouteResponse out = router->route(RouteRequest(topo));
    if (!out.ok) continue;
    Rng pat(2718);
    EbbResult ebb =
        effective_bisection_bandwidth(topo.net, out.table, map, 40, pat);
    EXPECT_GT(ebb.ebb, 0.0) << router->name();
    EXPECT_LE(ebb.ebb, 1.0 + 1e-9) << router->name();
    if (router->name() == "MinHop") minhop_ebb = ebb.ebb;
    if (router->name() == "DFSSSP") dfsssp_ebb = ebb.ebb;
  }
  ASSERT_GT(minhop_ebb, 0.0);
  ASSERT_GT(dfsssp_ebb, 0.0);
  EXPECT_GE(dfsssp_ebb, minhop_ebb * 0.9);
}

TEST(Integration, RealSystemStandInsRouteAndVerify) {
  // Keep to the two smaller systems here; the large ones run in benches.
  for (Topology topo : {make_odin(), make_chic()}) {
    for (const auto& router : make_all_routers()) {
      RouteResponse out = router->route(RouteRequest(topo));
      if (!out.ok) continue;
      EXPECT_TRUE(verify_routing(topo.net, out.table).connected())
          << router->name() << " on " << topo.name;
      if (router->deadlock_free()) {
        EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table))
            << router->name() << " on " << topo.name;
      }
    }
  }
}

}  // namespace
}  // namespace dfsssp
