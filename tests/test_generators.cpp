#include "topology/generators.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dfsssp {
namespace {

std::size_t num_links(const Network& net) {
  std::size_t n = 0;
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    if (net.is_switch_channel(c) && c < net.channel(c).reverse) ++n;
  }
  return n;
}

TEST(Generators, SingleSwitch) {
  Topology t = make_single_switch(16);
  EXPECT_EQ(t.net.num_switches(), 1U);
  EXPECT_EQ(t.net.num_terminals(), 16U);
  EXPECT_TRUE(t.net.connected());
}

TEST(Generators, RingStructure) {
  Topology t = make_ring(5, 1);
  EXPECT_EQ(t.net.num_switches(), 5U);
  EXPECT_EQ(num_links(t.net), 5U);
  for (NodeId sw : t.net.switches()) EXPECT_EQ(t.net.switch_degree(sw), 2U);
  EXPECT_TRUE(t.meta.wraparound);
}

TEST(Generators, Torus2D) {
  std::uint32_t dims[2] = {4, 3};
  Topology t = make_torus(dims, 2, true);
  EXPECT_EQ(t.net.num_switches(), 12U);
  EXPECT_EQ(t.net.num_terminals(), 24U);
  // 2-D torus: every switch has degree 4 (radix >2 in both dims... dim of 3
  // and 4 both wrap).
  for (NodeId sw : t.net.switches()) EXPECT_EQ(t.net.switch_degree(sw), 4U);
  EXPECT_EQ(num_links(t.net), 24U);
  EXPECT_TRUE(t.net.connected());
  EXPECT_EQ(t.meta.sw_coord.size(), 24U);
}

TEST(Generators, MeshHasBoundaries) {
  std::uint32_t dims[2] = {4, 4};
  Topology t = make_torus(dims, 1, false);
  // Mesh links: 2 * 4 * 3 = 24.
  EXPECT_EQ(num_links(t.net), 24U);
  std::multiset<std::uint32_t> degrees;
  for (NodeId sw : t.net.switches()) degrees.insert(t.net.switch_degree(sw));
  EXPECT_EQ(degrees.count(2), 4U);  // corners
  EXPECT_EQ(degrees.count(3), 8U);  // edges
  EXPECT_EQ(degrees.count(4), 4U);  // interior
}

TEST(Generators, TorusRadix2NoDuplicateLinks) {
  std::uint32_t dims[1] = {2};
  Topology t = make_torus(dims, 1, true);
  EXPECT_EQ(num_links(t.net), 1U);  // wrap would duplicate the 0-1 link
}

TEST(Generators, Hypercube) {
  Topology t = make_hypercube(4, 1);
  EXPECT_EQ(t.net.num_switches(), 16U);
  for (NodeId sw : t.net.switches()) EXPECT_EQ(t.net.switch_degree(sw), 4U);
  EXPECT_EQ(num_links(t.net), 32U);
}

TEST(Generators, KaryNTreeCounts) {
  // 4-ary 3-tree: 3 levels x 16 switches, 64 terminals.
  Topology t = make_kary_ntree(4, 3);
  EXPECT_EQ(t.net.num_switches(), 48U);
  EXPECT_EQ(t.net.num_terminals(), 64U);
  EXPECT_TRUE(t.net.connected());
  // Leaves: 4 terminals + 4 ups. Middle: 4 down + 4 up. Roots: 4 down.
  for (NodeId sw : t.net.switches()) {
    const std::int32_t level = t.meta.sw_level[t.net.node(sw).type_index];
    const std::uint32_t deg = t.net.switch_degree(sw);
    if (level == 0) {
      EXPECT_EQ(deg, 4U);
    } else if (level == 1) {
      EXPECT_EQ(deg, 8U);
    } else {
      EXPECT_EQ(deg, 4U);
    }
  }
}

TEST(Generators, XgftMatchesTableOneSizes) {
  // XGFT(2;14,14;7,7) pairs with the 14-ary 3-tree row of Table I: 2744
  // endpoints (see generators.hpp header).
  std::uint32_t ms[2] = {14, 14};
  std::uint32_t ws[2] = {7, 7};
  Topology t = make_xgft(2, ms, ws);
  EXPECT_EQ(t.net.num_terminals(), 14U * 14U * 14U);
  // Level counts: 196 leaves, 14*7=98 mid, 49 roots.
  std::size_t by_level[3] = {0, 0, 0};
  for (NodeId sw : t.net.switches()) {
    ++by_level[t.meta.sw_level[t.net.node(sw).type_index]];
  }
  EXPECT_EQ(by_level[0], 196U);
  EXPECT_EQ(by_level[1], 98U);
  EXPECT_EQ(by_level[2], 49U);
  EXPECT_TRUE(t.net.connected());
}

TEST(Generators, XgftPortBudgetFitsRadix36) {
  // The paper assumes 36-port switches for Table I (XGFT(2;18,18;9,9)).
  std::uint32_t ms[2] = {18, 18};
  std::uint32_t ws[2] = {9, 9};
  Topology t = make_xgft(2, ms, ws);
  for (NodeId sw : t.net.switches()) {
    const std::uint32_t ports =
        t.net.switch_degree(sw) + t.net.terminals_on(sw);
    EXPECT_LE(ports, 36U);
  }
}

TEST(Generators, KautzVertexCount) {
  // |K(b,n)| = (b+1) * b^(n-1).
  EXPECT_EQ(make_kautz(2, 2, 10).net.num_switches(), 6U);
  EXPECT_EQ(make_kautz(2, 3, 10).net.num_switches(), 12U);
  EXPECT_EQ(make_kautz(3, 3, 10).net.num_switches(), 36U);
  EXPECT_EQ(make_kautz(4, 3, 10).net.num_switches(), 80U);
}

TEST(Generators, KautzConnectedAndTerminalsRoundRobin) {
  Topology t = make_kautz(3, 3, 512);
  EXPECT_EQ(t.net.num_terminals(), 512U);
  EXPECT_TRUE(t.net.connected());
  // Round-robin: every switch gets 14 or 15 terminals (512 / 36).
  for (NodeId sw : t.net.switches()) {
    EXPECT_GE(t.net.terminals_on(sw), 14U);
    EXPECT_LE(t.net.terminals_on(sw), 15U);
  }
}

TEST(Generators, RandomRespectsLinkAndPortBudget) {
  Rng rng(5);
  Topology t = make_random(32, 4, 80, 8, rng);
  EXPECT_EQ(t.net.num_switches(), 32U);
  EXPECT_EQ(num_links(t.net), 80U);
  EXPECT_TRUE(t.net.connected());
  for (NodeId sw : t.net.switches()) {
    EXPECT_LE(t.net.switch_degree(sw), 8U);
  }
}

TEST(Generators, RandomRejectsInfeasible) {
  Rng rng(6);
  EXPECT_THROW(make_random(10, 1, 5, 4, rng), std::invalid_argument);
  EXPECT_THROW(make_random(10, 1, 100, 4, rng), std::invalid_argument);
}

TEST(Generators, RandomIsSeedDeterministic) {
  Rng r1(77), r2(77);
  Topology a = make_random(16, 2, 40, 8, r1);
  Topology b = make_random(16, 2, 40, 8, r2);
  ASSERT_EQ(a.net.num_channels(), b.net.num_channels());
  for (ChannelId c = 0; c < a.net.num_channels(); ++c) {
    EXPECT_EQ(a.net.channel(c).src, b.net.channel(c).src);
    EXPECT_EQ(a.net.channel(c).dst, b.net.channel(c).dst);
  }
}

TEST(Generators, Clos2) {
  Topology t = make_clos2(4, 2, 1, 8);
  EXPECT_EQ(t.net.num_switches(), 6U);
  EXPECT_EQ(t.net.num_terminals(), 32U);
  EXPECT_EQ(num_links(t.net), 8U);
  EXPECT_TRUE(t.meta.has_levels());
}

TEST(Generators, DragonflyBalanced) {
  // a=2, h=1, g=3: 6 switches; every group pair gets one global link.
  Topology t = make_dragonfly(2, 2, 1, 3);
  EXPECT_EQ(t.net.num_switches(), 6U);
  EXPECT_TRUE(t.net.connected());
  // Global links: g*(g-1)/2 = 3; intra: 3 groups * 1 = 3.
  EXPECT_EQ(num_links(t.net), 6U);
  EXPECT_THROW(make_dragonfly(2, 2, 2, 4), std::invalid_argument);
}

TEST(Generators, RealSystemStandIns) {
  struct Expected {
    const char* name;
    std::uint32_t terminals;
  };
  const Expected expected[] = {{"odin", 128},     {"chic", 550},
                               {"deimos", 724},   {"tsubame", 1430},
                               {"juropa", 3288},  {"ranger", 3936}};
  auto systems = make_all_real_systems();
  ASSERT_EQ(systems.size(), 6U);
  for (std::size_t i = 0; i < systems.size(); ++i) {
    EXPECT_EQ(systems[i].name, expected[i].name);
    EXPECT_EQ(systems[i].net.num_terminals(), expected[i].terminals)
        << expected[i].name;
    EXPECT_TRUE(systems[i].net.connected()) << expected[i].name;
  }
}

TEST(Generators, DeimosShape) {
  Topology t = make_deimos();
  // 3 director switches x (24 leaf chips + 6 spine chips, 2:1 internal
  // oversubscription).
  EXPECT_EQ(t.net.num_switches(), 3U * 30U);
  EXPECT_EQ(t.net.num_terminals(), 724U);
  // 2 x 30 inter-director links + 3 x 144 internal links.
  EXPECT_EQ(num_links(t.net), 60U + 3U * 24U * 6U);
}

TEST(Generators, PathTopology) {
  Topology t = make_path(4, 2);
  EXPECT_EQ(num_links(t.net), 3U);
  EXPECT_TRUE(t.net.connected());
}

}  // namespace
}  // namespace dfsssp
