#include "routing/dor.hpp"

#include <gtest/gtest.h>

#include "routing/collect.hpp"
#include "routing/verify.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

TEST(Dor, ConnectedAndMinimalOnTorus) {
  std::uint32_t dims[2] = {5, 4};
  Topology topo = make_torus(dims, 1, true);
  RouteResponse out = DorRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok) << out.error;
  VerifyReport report = verify_routing(topo.net, out.table);
  EXPECT_TRUE(report.connected());
  EXPECT_TRUE(report.minimal());
}

TEST(Dor, ConnectedAndMinimalOnMesh) {
  std::uint32_t dims[3] = {3, 3, 2};
  Topology topo = make_torus(dims, 1, false);
  RouteResponse out = DorRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  VerifyReport report = verify_routing(topo.net, out.table);
  EXPECT_TRUE(report.connected());
  EXPECT_TRUE(report.minimal());
}

TEST(Dor, DeadlockFreeOnMeshButNotTorus) {
  // The classical result DOR's OpenSM docs warn about (and why LASH exists):
  // dimension order is cycle-free on meshes, cyclic on wraparound rings.
  std::uint32_t dims[2] = {4, 4};
  Topology mesh = make_torus(dims, 1, false);
  RouteResponse mesh_out = DorRouter().route(RouteRequest(mesh));
  ASSERT_TRUE(mesh_out.ok);
  EXPECT_TRUE(routing_is_deadlock_free(mesh.net, mesh_out.table));

  Topology torus = make_torus(dims, 1, true);
  RouteResponse torus_out = DorRouter().route(RouteRequest(torus));
  ASSERT_TRUE(torus_out.ok);
  EXPECT_FALSE(routing_is_deadlock_free(torus.net, torus_out.table));
}

TEST(Dor, RefusesTopologyWithoutCoordinates) {
  Topology topo = make_kary_ntree(2, 2);
  RouteResponse out = DorRouter().route(RouteRequest(topo));
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("coordinates"), std::string::npos);
}

TEST(Dor, TakesShorterWayAround) {
  // Ring of 6, switch 0 -> switch 5 must go the -1 way (1 hop), not +5.
  Topology topo = make_ring(6, 1);
  RouteResponse out = DorRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  NodeId s0 = topo.net.switch_by_index(0);
  NodeId t5 = topo.net.terminal_by_index(5);  // terminal on switch 5
  ASSERT_EQ(topo.net.switch_of(t5), topo.net.switch_by_index(5));
  EXPECT_EQ(out.table.path_hops(topo.net, s0, t5), 1);
}

TEST(Dor, DimensionOrderIsRespected) {
  // On a 3x3 torus, a diagonal route must correct dimension 0 first.
  std::uint32_t dims[2] = {3, 3};
  Topology topo = make_torus(dims, 1, true);
  RouteResponse out = DorRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  // src (0,0) = index 0; dst (1,1) = index 4. First hop must go to (1,0).
  NodeId src = topo.net.switch_by_index(0);
  NodeId dst_term = topo.net.terminal_by_index(4);
  ChannelId first = out.table.next(src, dst_term);
  EXPECT_EQ(topo.net.channel(first).dst, topo.net.switch_by_index(1));
}

}  // namespace
}  // namespace dfsssp
