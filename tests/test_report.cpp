// Tests for the run-report library behind dfbench: JSON round trips,
// median/MAD statistics, schema-1 upgrades, repetition aggregation, and
// the noise-aware compare gate.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "obs/report/compare.hpp"
#include "obs/report/json_value.hpp"
#include "obs/report/report.hpp"
#include "obs/report/stats.hpp"

namespace dfsssp::obs {
namespace {

// ---- JsonValue --------------------------------------------------------------

TEST(JsonValueTest, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_EQ(JsonValue::parse("42").as_int(), 42);
  EXPECT_EQ(JsonValue::parse("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(JsonValue::parse("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(JsonValue::parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonValueTest, IntegersStayExactBeyondDoublePrecision) {
  // 2^63 - 1 is not representable as a double; the report schema keeps
  // metric counters exact so the quality gate can diff them bitwise.
  const JsonValue v = JsonValue::parse("9223372036854775807");
  ASSERT_TRUE(v.is_integer());
  EXPECT_EQ(v.as_int(), INT64_MAX);
  EXPECT_EQ(JsonValue::parse(v.dump()).as_int(), INT64_MAX);
}

TEST(JsonValueTest, NumbersWithExponentOrDotAreDoubles) {
  EXPECT_FALSE(JsonValue::parse("1.0").is_integer());
  EXPECT_FALSE(JsonValue::parse("1e2").is_integer());
  EXPECT_TRUE(JsonValue::parse("100").is_integer());
}

TEST(JsonValueTest, StringEscapesRoundTrip) {
  const std::string doc = R"("a\"b\\c\n\tA")";
  const JsonValue v = JsonValue::parse(doc);
  EXPECT_EQ(v.as_string(), "a\"b\\c\n\tA");
  EXPECT_EQ(JsonValue::parse(v.dump()).as_string(), v.as_string());
}

TEST(JsonValueTest, DumpParseRoundTripsNestedDocument) {
  const std::string doc = R"({
    "name": "fig9",
    "values": [1, 2.5, true, null, "x"],
    "nested": {"a": {"b": []}, "c": -3}
  })";
  const JsonValue v = JsonValue::parse(doc);
  EXPECT_EQ(JsonValue::parse(v.dump()), v);
}

TEST(JsonValueTest, ObjectEqualityIsOrderInsensitive) {
  const JsonValue a = JsonValue::parse(R"({"x": 1, "y": 2})");
  const JsonValue b = JsonValue::parse(R"({"y": 2, "x": 1})");
  const JsonValue c = JsonValue::parse(R"({"x": 1, "y": 3})");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(JsonValueTest, MalformedInputThrows) {
  EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{\"a\": 1} x"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), std::runtime_error);
}

// ---- stats ------------------------------------------------------------------

TEST(StatsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(StatsTest, MadMeasuresSpreadRobustly) {
  // MAD of {1,2,3,4,100} around median 3: |deviations| = {2,1,0,1,97},
  // median 1 — the outlier does not blow up the scale.
  const std::vector<double> samples{1.0, 2.0, 3.0, 4.0, 100.0};
  EXPECT_DOUBLE_EQ(mad(samples, median(samples)), 1.0);
  EXPECT_DOUBLE_EQ(mad({5.0, 5.0, 5.0}, 5.0), 0.0);
}

// ---- RunReport schema -------------------------------------------------------

RunReport make_report() {
  RunReport r;
  r.bench = "bench_fig9_vl_random";
  r.git_rev = "abc123def456";
  r.build_flags = "Release";
  r.config = JsonValue::parse(R"({"seeds": 3, "threads": 0})");
  r.wall_seconds = 1.25;
  r.metrics = JsonValue::parse(
      R"({"dfsssp/layers_used": 4, "dfsssp/acyclicity_checks": 812})");
  r.timing_metrics = JsonValue::parse(
      R"({"dfsssp/layering_ns": {"edges": [], "counts": [3],
          "count": 3, "sum": 6000000, "max": 3000000}})");
  derive_timing_stats(r);
  return r;
}

TEST(RunReportTest, WriteParseRoundTrip) {
  const RunReport r = make_report();
  std::ostringstream out;
  write_run_report(r, out);
  const RunReport back = parse_run_report(out.str());
  EXPECT_EQ(back.schema_version, kReportSchemaVersion);
  EXPECT_EQ(back.bench, r.bench);
  EXPECT_EQ(back.git_rev, r.git_rev);
  EXPECT_EQ(back.repetitions, 1u);
  EXPECT_TRUE(back.tables_deterministic);
  EXPECT_EQ(back.config, r.config);
  EXPECT_EQ(back.metrics, r.metrics);
  EXPECT_EQ(back.timing_metrics, r.timing_metrics);
  ASSERT_EQ(back.timing_stats.size(), r.timing_stats.size());
  EXPECT_DOUBLE_EQ(back.timing_stats.at("dfsssp/layering_ns").median_ms,
                   6.0);  // 6e6 ns summed
  EXPECT_DOUBLE_EQ(back.timing_stats.at("bench/wall_ms").median_ms, 1250.0);
}

TEST(RunReportTest, SchemaOneUpgrades) {
  // The shape PR 3's benches emitted: no schema_version, no timing_stats.
  const std::string v1 = R"({
    "bench": "bench_fig9_vl_random",
    "config": {"seeds": 3},
    "wall_seconds": 2.0,
    "tables": [{"title": "t", "columns": ["a"], "rows": [["1"]]}],
    "metrics": {"dfsssp/layers_used": 4},
    "timing_metrics": {"sssp/fill_planes_ns":
        {"edges": [], "counts": [1], "count": 1, "sum": 4000000, "max": 4000000}}
  })";
  const RunReport r = parse_run_report(v1);
  EXPECT_EQ(r.schema_version, kReportSchemaVersion);  // upgraded in place
  // v1 predates the flag and fig7/fig8-style tables embed wall clock:
  // never gate them.
  EXPECT_FALSE(r.tables_deterministic);
  EXPECT_DOUBLE_EQ(r.timing_stats.at("sssp/fill_planes_ns").median_ms, 4.0);
  EXPECT_DOUBLE_EQ(r.timing_stats.at("bench/wall_ms").median_ms, 2000.0);
}

TEST(RunReportTest, UnknownSchemaVersionThrows) {
  EXPECT_THROW(
      parse_run_report(R"({"schema_version": 99, "bench": "x"})"),
      std::runtime_error);
}

// ---- aggregate_runs ---------------------------------------------------------

TEST(AggregateTest, MedianAndMadAcrossRepetitions) {
  std::vector<RunReport> reps(3, make_report());
  reps[0].wall_seconds = 1.0;
  reps[1].wall_seconds = 1.2;
  reps[2].wall_seconds = 2.0;  // outlier repetition
  for (auto& r : reps) {
    r.timing_stats.clear();
    derive_timing_stats(r);
  }
  const RunReport agg = aggregate_runs(reps);
  EXPECT_EQ(agg.repetitions, 3u);
  EXPECT_DOUBLE_EQ(agg.wall_seconds, 1.2);
  const TimingStat& wall = agg.timing_stats.at("bench/wall_ms");
  EXPECT_DOUBLE_EQ(wall.median_ms, 1200.0);
  EXPECT_DOUBLE_EQ(wall.mad_ms, 200.0);  // |{1000,1200,2000} - 1200| -> 200
  EXPECT_EQ(wall.reps, 3u);
  // Deterministic sections come through unchanged.
  EXPECT_EQ(agg.metrics, reps[0].metrics);
}

TEST(AggregateTest, MetricMismatchViolatesDeterminismContract) {
  std::vector<RunReport> reps(2, make_report());
  reps[1].metrics = JsonValue::parse(R"({"dfsssp/layers_used": 5})");
  EXPECT_THROW(aggregate_runs(reps), std::runtime_error);
}

TEST(AggregateTest, ConfigMismatchThrows) {
  std::vector<RunReport> reps(2, make_report());
  reps[1].config = JsonValue::parse(R"({"seeds": 4, "threads": 0})");
  EXPECT_THROW(aggregate_runs(reps), std::runtime_error);
}

// ---- compare ----------------------------------------------------------------

TEST(CompareTest, IdenticalReportsPass) {
  const RunReport r = make_report();
  const CompareResult res = compare_reports(r, r);
  EXPECT_EQ(res.quality_drift, 0u);
  EXPECT_EQ(res.timing_regressions, 0u);
  EXPECT_TRUE(res.gate_ok({}));
}

TEST(CompareTest, QualityMetricDriftRegressesBothDirections) {
  const RunReport base = make_report();
  RunReport run = make_report();
  // Fewer layers might look like an improvement, but the gate cannot know;
  // any exact-metric change is drift until a human refreshes the baseline.
  run.metrics = JsonValue::parse(
      R"({"dfsssp/layers_used": 3, "dfsssp/acyclicity_checks": 812})");
  const CompareResult res = compare_reports(base, run);
  EXPECT_EQ(res.quality_drift, 1u);
  EXPECT_FALSE(res.gate_ok({}));
  bool saw = false;
  for (const Finding& f : res.findings) {
    if (f.metric == "dfsssp/layers_used") {
      EXPECT_EQ(f.verdict, Verdict::kRegressed);
      EXPECT_TRUE(f.deterministic);
      saw = true;
    }
  }
  EXPECT_TRUE(saw);
}

TEST(CompareTest, MissingQualityMetricFailsNewOnlyWarns) {
  const RunReport base = make_report();
  RunReport run = make_report();
  run.metrics = JsonValue::parse(
      R"({"dfsssp/layers_used": 4, "sssp/extra_metric": 1})");
  const CompareResult res = compare_reports(base, run);
  // acyclicity_checks vanished (gates) and extra_metric appeared (warns).
  EXPECT_EQ(res.quality_drift, 1u);
  EXPECT_EQ(res.new_metrics, 1u);
  EXPECT_FALSE(res.gate_ok({}));
}

TEST(CompareTest, TablesGateOnlyWhenBothSidesDeterministic) {
  RunReport base = make_report();
  RunReport run = make_report();
  base.tables = JsonValue::parse(R"([{"rows": [["1"]]}])");
  run.tables = JsonValue::parse(R"([{"rows": [["2"]]}])");
  EXPECT_EQ(compare_reports(base, run).quality_drift, 1u);
  run.tables_deterministic = false;  // wall clock in the cells: exempt
  EXPECT_EQ(compare_reports(base, run).quality_drift, 0u);
}

TEST(CompareTest, TimingWithinNoisePasses) {
  RunReport base = make_report();
  RunReport run = make_report();
  TimingStat st;
  st.median_ms = 100.0;
  st.mad_ms = 2.0;
  st.reps = 3;
  base.timing_stats["phase/x_ns"] = st;
  st.median_ms = 105.0;  // threshold = 3 * 1.4826 * 2 = 8.9ms > 5ms delta
  run.timing_stats["phase/x_ns"] = st;
  const CompareResult res = compare_reports(base, run);
  EXPECT_EQ(res.timing_regressions, 0u);
  EXPECT_TRUE(res.gate_ok({}));
}

TEST(CompareTest, TimingBeyondNoiseRegressesButGatesOnlyOnRequest) {
  RunReport base = make_report();
  RunReport run = make_report();
  TimingStat st;
  st.median_ms = 100.0;
  st.mad_ms = 2.0;
  st.reps = 3;
  base.timing_stats["phase/x_ns"] = st;
  st.median_ms = 150.0;  // way past max(8.9, 10, 0.5)
  run.timing_stats["phase/x_ns"] = st;
  const CompareResult res = compare_reports(base, run);
  EXPECT_EQ(res.timing_regressions, 1u);
  EXPECT_TRUE(res.gate_ok({}));  // timing only warns by default
  CompareOptions gate;
  gate.fail_on_timing = true;
  EXPECT_FALSE(res.gate_ok(gate));
}

TEST(CompareTest, TimingImprovementIsReported) {
  RunReport base = make_report();
  RunReport run = make_report();
  TimingStat st;
  st.median_ms = 100.0;
  st.mad_ms = 1.0;
  st.reps = 3;
  base.timing_stats["phase/x_ns"] = st;
  st.median_ms = 50.0;
  run.timing_stats["phase/x_ns"] = st;
  EXPECT_EQ(compare_reports(base, run).timing_improvements, 1u);
}

TEST(CompareTest, ZeroMadFallsBackToRelativeAndAbsoluteFloors) {
  // Single-repetition baselines have MAD 0; without the floors every
  // nanosecond of jitter would read as a regression.
  RunReport base = make_report();
  RunReport run = make_report();
  TimingStat st;
  st.median_ms = 100.0;
  st.mad_ms = 0.0;
  st.reps = 1;
  base.timing_stats["phase/x_ns"] = st;
  st.median_ms = 109.0;  // within the 10% relative floor
  run.timing_stats["phase/x_ns"] = st;
  EXPECT_EQ(compare_reports(base, run).timing_regressions, 0u);
  st.median_ms = 115.0;  // past it
  run.timing_stats["phase/x_ns"] = st;
  EXPECT_EQ(compare_reports(base, run).timing_regressions, 1u);
  // Tiny timings fall under the absolute floor instead.
  st.median_ms = 0.01;
  st.mad_ms = 0.0;
  base.timing_stats["phase/x_ns"] = st;
  st.median_ms = 0.4;  // 40x slower but < abs_epsilon_ms above baseline
  run.timing_stats["phase/x_ns"] = st;
  EXPECT_EQ(compare_reports(base, run).timing_regressions, 0u);
}

TEST(CompareTest, NewTimingMetricDoesNotGate) {
  RunReport base = make_report();
  RunReport run = make_report();
  TimingStat st;
  st.median_ms = 5.0;
  run.timing_stats["phase/brand_new_ns"] = st;
  const CompareResult res = compare_reports(base, run);
  EXPECT_TRUE(res.gate_ok({}));
}

}  // namespace
}  // namespace dfsssp::obs
