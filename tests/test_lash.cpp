#include "routing/lash.hpp"

#include <gtest/gtest.h>

#include "routing/collect.hpp"
#include "routing/verify.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

TEST(Lash, ConnectedMinimalDeadlockFreeOnRing) {
  Topology topo = make_ring(8, 2);
  RouteResponse out = LashRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok) << out.error;
  VerifyReport report = verify_routing(topo.net, out.table);
  EXPECT_TRUE(report.connected());
  EXPECT_TRUE(report.minimal());
  EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table));
  EXPECT_GE(out.stats.layers_used, 2);  // the ring needs >= 2 layers
}

TEST(Lash, TorusNeedsFewLayers) {
  // LASH was designed for tori; it should succeed with few layers.
  std::uint32_t dims[2] = {4, 4};
  Topology topo = make_torus(dims, 1, true);
  RouteResponse out = LashRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table));
  EXPECT_LE(out.stats.layers_used, 4);
}

TEST(Lash, StructuredSelectionBeatsHashedOnTori) {
  // LASH's layer demand is highly path-selection sensitive: construction-
  // order (DOR-like) paths conflict far less on tori than arbitrary
  // shortest paths.
  std::uint32_t dims[2] = {8, 8};
  Topology topo = make_torus(dims, 1, true);
  RouteResponse structured =
      LashRouter(LashOptions{
          .max_layers = 16,
          .selection = LashOptions::PathSelection::kFirstCandidate})
          .route(RouteRequest(topo));
  RouteResponse hashed =
      LashRouter(LashOptions{.max_layers = 16}).route(RouteRequest(topo));
  ASSERT_TRUE(structured.ok) << structured.error;
  ASSERT_TRUE(hashed.ok) << hashed.error;
  EXPECT_LT(structured.stats.layers_used, hashed.stats.layers_used);
  EXPECT_TRUE(routing_is_deadlock_free(topo.net, structured.table));
  EXPECT_TRUE(verify_routing(topo.net, structured.table).minimal());
}

TEST(Lash, TreeNeedsOneLayer) {
  Topology topo = make_kary_ntree(3, 2);
  RouteResponse out = LashRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.stats.layers_used, 1);
  EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table));
}

TEST(Lash, FailsWhenLayersExhausted) {
  Topology topo = make_ring(12, 1);
  RouteResponse out = LashRouter(LashOptions{.max_layers = 1}).route(RouteRequest(topo));
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("virtual layers"), std::string::npos);
}

TEST(Lash, LayerSharedByAllTerminalPairsOfSwitchPair) {
  Topology topo = make_ring(5, 3);
  RouteResponse out = LashRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  const Network& net = topo.net;
  for (NodeId s : net.switches()) {
    for (NodeId t1 : net.terminals()) {
      for (NodeId t2 : net.terminals()) {
        if (net.switch_of(t1) != net.switch_of(t2)) continue;
        if (net.switch_of(t1) == s) continue;
        EXPECT_EQ(out.table.layer(s, t1), out.table.layer(s, t2));
      }
    }
  }
}

TEST(Lash, RandomTopologiesStayDeadlockFree) {
  Rng rng(404);
  for (int i = 0; i < 3; ++i) {
    Topology topo = make_random(16, 2, 40, 10, rng);
    RouteResponse out = LashRouter().route(RouteRequest(topo));
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_TRUE(verify_routing(topo.net, out.table).connected());
    EXPECT_TRUE(verify_routing(topo.net, out.table).minimal());
    EXPECT_TRUE(routing_is_deadlock_free(topo.net, out.table));
  }
}

}  // namespace
}  // namespace dfsssp
