#include "analysis/certificate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "analysis/witness.hpp"
#include "routing/collect.hpp"
#include "routing/dfsssp.hpp"
#include "routing/dump.hpp"
#include "routing/minhop.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

Topology routed_random(RouteResponse& out) {
  Rng rng(7);
  Topology topo = make_random(32, 4, 80, 8, rng);
  out = DfssspRouter().route(RouteRequest(topo));
  return topo;
}

TEST(Certificate, RoundTripAcceptsDfssspRouting) {
  RouteResponse out;
  Topology topo = routed_random(out);
  ASSERT_TRUE(out.ok);

  CertificateResult cert = make_certificate(topo.net, out.table);
  ASSERT_TRUE(cert.ok);

  std::ostringstream os;
  write_certificate(topo.net, cert.cert, os);
  std::istringstream is(os.str());
  Certificate loaded = read_certificate(topo.net, is);

  CertCheckResult check = check_certificate(topo.net, out.table, loaded);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_GT(check.paths_checked, 0u);
  EXPECT_GT(check.deps_checked, 0u);
}

TEST(Certificate, ReversedLayerOrderRejected) {
  RouteResponse out;
  Topology topo = routed_random(out);
  ASSERT_TRUE(out.ok);
  CertificateResult cert = make_certificate(topo.net, out.table);
  ASSERT_TRUE(cert.ok);

  // Reversing a layer's order violates every dependency that layer has
  // (a mere swap of two entries can still be a different valid topological
  // order, which the checker rightly accepts).
  auto busiest = std::max_element(
      cert.cert.order.begin(), cert.cert.order.end(),
      [](const auto& a, const auto& b) { return a.size() < b.size(); });
  ASSERT_GE(busiest->size(), 2u);
  std::reverse(busiest->begin(), busiest->end());
  CertCheckResult check = check_certificate(topo.net, out.table, cert.cert);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("violates the topological order"),
            std::string::npos)
      << check.error;
}

TEST(Certificate, MissingChannelRejected) {
  RouteResponse out;
  Topology topo = routed_random(out);
  ASSERT_TRUE(out.ok);
  CertificateResult cert = make_certificate(topo.net, out.table);
  ASSERT_TRUE(cert.ok);

  auto busiest = std::max_element(
      cert.cert.order.begin(), cert.cert.order.end(),
      [](const auto& a, const auto& b) { return a.size() < b.size(); });
  ASSERT_FALSE(busiest->empty());
  busiest->erase(busiest->begin());
  EXPECT_FALSE(check_certificate(topo.net, out.table, cert.cert).ok);
}

TEST(Certificate, WrongLayerCountRejected) {
  RouteResponse out;
  Topology topo = routed_random(out);
  ASSERT_TRUE(out.ok);
  CertificateResult cert = make_certificate(topo.net, out.table);
  ASSERT_TRUE(cert.ok);

  cert.cert.num_layers = static_cast<Layer>(cert.cert.num_layers + 1);
  cert.cert.order.emplace_back();
  CertCheckResult check = check_certificate(topo.net, out.table, cert.cert);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("layer"), std::string::npos) << check.error;
}

TEST(Certificate, TruncatedTextRejected) {
  RouteResponse out;
  Topology topo = routed_random(out);
  ASSERT_TRUE(out.ok);
  CertificateResult cert = make_certificate(topo.net, out.table);
  ASSERT_TRUE(cert.ok);

  std::ostringstream os;
  write_certificate(topo.net, cert.cert, os);
  const std::string text = os.str();
  // Cut mid-file: channel lines are missing and `end` never arrives.
  std::istringstream is(text.substr(0, text.size() / 2));
  EXPECT_THROW(read_certificate(topo.net, is), std::runtime_error);
  // Unknown node names must be rejected too.
  std::istringstream bad("cert 1\nlayers 1\nlayer 0 1\nc bogus sw0 0\nend\n");
  EXPECT_THROW(read_certificate(topo.net, bad), std::runtime_error);
}

TEST(Certificate, ThreadCountInvariant) {
  RouteResponse out;
  Topology topo = routed_random(out);
  ASSERT_TRUE(out.ok);

  CertificateResult serial = make_certificate(topo.net, out.table,
                                              ExecContext::serial());
  CertificateResult threaded = make_certificate(topo.net, out.table,
                                                ExecContext(4));
  ASSERT_TRUE(serial.ok);
  ASSERT_TRUE(threaded.ok);

  std::ostringstream s1, s4;
  write_certificate(topo.net, serial.cert, s1);
  write_certificate(topo.net, threaded.cert, s4);
  EXPECT_EQ(s1.str(), s4.str());
  EXPECT_TRUE(check_certificate(topo.net, out.table, threaded.cert).ok);
}

TEST(Certificate, FlippedPathLayerRejected) {
  RouteResponse out;
  Topology topo = routed_random(out);
  ASSERT_TRUE(out.ok);
  ASSERT_GE(out.table.num_layers(), 2);
  CertificateResult cert = make_certificate(topo.net, out.table);
  ASSERT_TRUE(cert.ok);

  // Move one multi-hop path to another (declared) layer: its dependencies
  // were never certified there, so the checker must refuse.
  bool flipped = false;
  for (NodeId sw : topo.net.switches()) {
    if (flipped || topo.net.terminals_on(sw) == 0) continue;
    for (NodeId t : topo.net.terminals()) {
      if (topo.net.switch_of(t) == sw) continue;
      if (out.table.path_hops(topo.net, sw, t) < 2) continue;
      const Layer l = out.table.layer(sw, t);
      out.table.set_layer(sw, t, l == 0 ? Layer{1} : Layer{0});
      flipped = true;
      break;
    }
  }
  ASSERT_TRUE(flipped);
  EXPECT_FALSE(check_certificate(topo.net, out.table, cert.cert).ok);
}

TEST(Certificate, CyclicLayerReportedWithWitness) {
  // A bidirectional ring routed minimally without virtual layers is the
  // paper's canonical deadlocking configuration (Figure 2).
  Topology topo = make_ring(6, 2);
  RouteResponse out = MinHopRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  ASSERT_FALSE(routing_is_deadlock_free(topo.net, out.table));

  CertificateResult cert = make_certificate(topo.net, out.table);
  EXPECT_FALSE(cert.ok);
  EXPECT_NE(cert.cyclic_layer, kInvalidLayer);

  DeadlockWitness witness = extract_witness(topo.net, out.table);
  ASSERT_FALSE(witness.empty());
  EXPECT_EQ(witness.layer, cert.cyclic_layer);
  // The edges must close a cycle, and every edge must carry at least one
  // concrete inducing path.
  for (std::size_t i = 0; i < witness.edges.size(); ++i) {
    const WitnessEdge& e = witness.edges[i];
    EXPECT_EQ(e.to, witness.edges[(i + 1) % witness.edges.size()].from);
    EXPECT_GE(e.inducing_paths, 1u);
    ASSERT_FALSE(e.examples.empty());
    EXPECT_LE(e.examples.size(), e.inducing_paths);
  }

  std::ostringstream os;
  write_witness(topo.net, witness, os);
  EXPECT_NE(os.str().find("deadlock witness"), std::string::npos);
}

TEST(Certificate, DeadlockFreeRoutingHasEmptyWitness) {
  RouteResponse out;
  Topology topo = routed_random(out);
  ASSERT_TRUE(out.ok);
  EXPECT_TRUE(extract_witness(topo.net, out.table).empty());
}

}  // namespace
}  // namespace dfsssp
