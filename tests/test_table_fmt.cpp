#include "common/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dfsssp {
namespace {

TEST(TableFmt, CollectsRows) {
  Table t("demo", {"a", "b"});
  t.row().cell("x").cell(1.5, 1);
  t.row().cell(std::uint64_t{7}).cell("y");
  EXPECT_EQ(t.num_rows(), 2U);
  EXPECT_EQ(t.rows()[0][1], "1.5");
  EXPECT_EQ(t.rows()[1][0], "7");
}

TEST(TableFmt, CellBeforeRowThrows) {
  Table t("demo", {"a"});
  EXPECT_THROW(t.cell("x"), std::logic_error);
}

TEST(TableFmt, CsvRoundTrip) {
  Table t("demo", {"name", "value"});
  t.row().cell("plain").cell(3);
  t.row().cell("with,comma").cell("with\"quote");
  const std::string path = ::testing::TempDir() + "/table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,3");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",\"with\"\"quote\"");
  std::remove(path.c_str());
}

TEST(TableFmt, NegativeAndDoubleFormatting) {
  Table t("demo", {"v"});
  t.row().cell(-42);
  t.row().cell(0.12345, 3);
  EXPECT_EQ(t.rows()[0][0], "-42");
  EXPECT_EQ(t.rows()[1][0], "0.123");
}

}  // namespace
}  // namespace dfsssp
