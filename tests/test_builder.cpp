#include "topology/builder.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "topology/metrics.hpp"
#include "topology/network.hpp"

namespace dfsssp {
namespace {

// The builder's contract: a built Network is bitwise identical (nodes,
// channels, CSR) to an incremental construction that adds every switch,
// then every link, then every terminal in the same order.
TEST(NetworkBuilder, MatchesIncrementalConstruction) {
  const std::vector<SwitchLink> links{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}};
  const std::vector<std::uint32_t> terms{0, 0, 1, 2, 3, 3};

  NetworkBuilder builder(4);
  builder.add_links(links);
  builder.add_terminals(terms);
  Network built = builder.build();

  Network incr;
  for (int i = 0; i < 4; ++i) incr.add_switch();
  for (const SwitchLink& l : links) incr.add_link(l.a, l.b);
  for (std::uint32_t sw : terms) incr.add_terminal(sw);
  incr.freeze();
  incr.validate();

  EXPECT_EQ(structure_hash(built), structure_hash(incr));
  ASSERT_EQ(built.num_channels(), incr.num_channels());
  for (ChannelId c = 0; c < built.num_channels(); ++c) {
    EXPECT_EQ(built.channel(c).src, incr.channel(c).src) << "channel " << c;
    EXPECT_EQ(built.channel(c).dst, incr.channel(c).dst) << "channel " << c;
    EXPECT_EQ(built.channel(c).reverse, incr.channel(c).reverse);
  }
  for (NodeId n = 0; n < built.num_nodes(); ++n) {
    ASSERT_EQ(built.out_channels(n).size(), incr.out_channels(n).size());
    for (std::size_t i = 0; i < built.out_channels(n).size(); ++i) {
      EXPECT_EQ(built.out_channels(n)[i], incr.out_channels(n)[i]);
    }
  }
}

TEST(NetworkBuilder, AppliesNames) {
  NetworkBuilder builder(2);
  builder.add_link(0, 1);
  builder.set_switch_name(0, "leaf");
  Network net = builder.build();
  EXPECT_EQ(net.node_name(0), "leaf");
  EXPECT_EQ(net.node_name(1), "sw1");  // default, no side-table entry
  EXPECT_FALSE(net.has_custom_name(1));
}

TEST(NetworkBuilder, SwitchCountOverflowThrows) {
  EXPECT_THROW(NetworkBuilder(1ULL << 32), std::overflow_error);
  EXPECT_THROW(NetworkBuilder(static_cast<std::uint64_t>(kInvalidNode)),
               std::overflow_error);
}

TEST(NetworkBuilder, RejectsBadStreamEntries) {
  NetworkBuilder builder(3);
  EXPECT_THROW(builder.add_link(0, 3), std::invalid_argument);
  EXPECT_THROW(builder.add_link(1, 1), std::invalid_argument);
  EXPECT_THROW(builder.add_terminal(7), std::invalid_argument);
  EXPECT_THROW(builder.set_switch_name(5, "x"), std::invalid_argument);
  // The builder is still usable after rejected entries.
  builder.add_link(0, 1);
  builder.add_link(1, 2);
  builder.add_terminal(0);
  Network net = builder.build();
  EXPECT_EQ(net.num_switches(), 3U);
  EXPECT_EQ(net.num_terminals(), 1U);
}

TEST(NetworkBuilder, BuildResetsForReuse) {
  NetworkBuilder builder(2);
  builder.add_link(0, 1);
  builder.add_terminal(0);
  Network first = builder.build();
  EXPECT_EQ(first.num_terminals(), 1U);
  EXPECT_EQ(builder.num_switches(), 0U);
  EXPECT_EQ(builder.num_links(), 0U);
  EXPECT_EQ(builder.num_terminals(), 0U);
}

// The incremental API's own narrowing guard: Network::add_* must refuse to
// run past the 32-bit id space instead of wrapping.
TEST(Network, CheckedNarrowingGuardsExist) {
  // We cannot allocate 2^32 nodes in a test; assert the guard is reachable
  // through the builder (cheap: count check happens before allocation).
  NetworkBuilder big(kInvalidNode - 1);  // max allowed switch count
  EXPECT_EQ(big.num_switches(), static_cast<std::uint64_t>(kInvalidNode) - 1);
  // One terminal pushes S + T past kInvalidNode: build() must throw before
  // touching any 16-GiB allocation (the count check is first).
  big.add_terminal(0);
  EXPECT_THROW(big.build(), std::overflow_error);
}

}  // namespace
}  // namespace dfsssp
