#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

namespace dfsssp {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 4);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7U);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(11);
  std::array<int, 8> counts{};
  const int draws = 80000;
  for (int i = 0; i < draws; ++i) ++counts[rng.next_below(8)];
  for (int c : counts) {
    EXPECT_GT(c, draws / 8 * 0.9);
    EXPECT_LT(c, draws / 8 * 1.1);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  rng.shuffle(v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 50U);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(23);
  Rng b = a.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 4);
}

TEST(Rng, SplitMixKnownSequenceIsStable) {
  // Pin the generator's output so simulated paper numbers stay portable.
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  std::uint64_t s2 = 0;
  EXPECT_EQ(first, splitmix64(s2));
  EXPECT_NE(first, splitmix64(s2));
}

}  // namespace
}  // namespace dfsssp
