#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "topology/generators.hpp"
#include "topology/io.hpp"
#include "topology/metrics.hpp"

namespace dfsssp {
namespace {

class TempFile {
 public:
  explicit TempFile(const char* tag)
      : path_(std::string(::testing::TempDir()) + "dfel_" + tag + ".bin") {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(EdgeList, RoundTripPreservesStructure) {
  TempFile file("roundtrip");
  Topology orig = make_dragonfly(4, 2, 2, 9);
  write_edgelist(orig.net, file.path());
  Topology back = read_edgelist_path(file.path());
  EXPECT_EQ(structure_hash(back.net), structure_hash(orig.net));
  EXPECT_EQ(back.net.num_switches(), orig.net.num_switches());
  EXPECT_EQ(back.net.num_terminals(), orig.net.num_terminals());
  EXPECT_EQ(back.meta.family, "edgelist");  // names/meta deliberately dropped
  EXPECT_FALSE(back.net.has_custom_name(0));
}

TEST(EdgeList, RoundTripParallelLinksAndMultiTerminals) {
  TempFile file("parallel");
  Network net;
  NodeId a = net.add_switch();
  NodeId b = net.add_switch();
  net.add_link(a, b);
  net.add_link(a, b);  // parallel link survives the format
  net.add_terminal(a);
  net.add_terminal(a);
  net.add_terminal(b);
  net.freeze();
  write_edgelist(net, file.path());
  Topology back = read_edgelist_path(file.path());
  EXPECT_EQ(structure_hash(back.net), structure_hash(net));
}

TEST(EdgeList, WriterStreamsChunks) {
  TempFile file("writer");
  {
    EdgeListWriter writer(file.path(), 4);
    const std::vector<SwitchLink> chunk1{{0, 1}, {1, 2}};
    const std::vector<SwitchLink> chunk2{{2, 3}};
    const std::vector<std::uint32_t> terms{0, 3};
    writer.add_links(chunk1);
    writer.add_links(chunk2);
    writer.add_terminals(terms);
    writer.finish();
  }
  Topology back = read_edgelist_path(file.path());
  EXPECT_EQ(back.net.num_switches(), 4U);
  EXPECT_EQ(back.net.num_terminals(), 2U);
  EXPECT_EQ(back.net.switch_degree(1), 2U);
  EXPECT_TRUE(back.net.connected());

  // Streamed output is byte-identical to write_edgelist of the same net.
  Network built;
  for (int i = 0; i < 4; ++i) built.add_switch();
  built.add_link(0, 1);
  built.add_link(1, 2);
  built.add_link(2, 3);
  built.add_terminal(0);
  built.add_terminal(3);
  built.freeze();
  TempFile file2("writer_ref");
  write_edgelist(built, file2.path());
  std::ifstream f1(file.path(), std::ios::binary);
  std::ifstream f2(file2.path(), std::ios::binary);
  std::string b1((std::istreambuf_iterator<char>(f1)),
                 std::istreambuf_iterator<char>());
  std::string b2((std::istreambuf_iterator<char>(f2)),
                 std::istreambuf_iterator<char>());
  EXPECT_EQ(b1, b2);
}

TEST(EdgeList, BadMagicThrows) {
  std::istringstream in(std::string("NOTDFEL0") + std::string(24, '\0'));
  EXPECT_THROW(read_edgelist(in), std::runtime_error);
}

TEST(EdgeList, TruncatedHeaderThrows) {
  std::istringstream in(std::string("DFEL"));
  EXPECT_THROW(read_edgelist(in), std::runtime_error);
}

TEST(EdgeList, TruncatedBodyThrows) {
  TempFile file("truncated");
  Topology orig = make_ring(8, 1);
  write_edgelist(orig.net, file.path());
  std::ifstream in(file.path(), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  bytes.resize(bytes.size() - 3);  // clip mid-record
  std::istringstream clipped(bytes);
  EXPECT_THROW(read_edgelist(clipped), std::runtime_error);
}

TEST(EdgeList, OutOfRangeEndpointThrows) {
  TempFile file("oob");
  {
    EdgeListWriter writer(file.path(), 2);
    // Bypass builder validation: the writer does not validate, the reader
    // must.
    const std::vector<SwitchLink> links{{0, 7}};
    writer.add_links(links);
    writer.finish();
  }
  EXPECT_THROW(read_edgelist_path(file.path()), std::runtime_error);
}

TEST(EdgeList, MissingFileThrows) {
  EXPECT_THROW(read_edgelist_path("/nonexistent/nope.dfel"),
               std::runtime_error);
}

}  // namespace
}  // namespace dfsssp
