#include "analysis/lints.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <utility>

#include "routing/dfsssp.hpp"
#include "routing/dump.hpp"
#include "routing/minhop.hpp"
#include "topology/generators.hpp"

namespace dfsssp {
namespace {

TEST(Lints, CleanRoutingReportsNothing) {
  Rng rng(11);
  Topology topo = make_random(16, 2, 40, 8, rng);
  RouteResponse out = DfssspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  LintReport report = lint_routing(topo.net, out.table);
  EXPECT_EQ(report.count(LintKind::kUnreachableDestination), 0u);
  EXPECT_EQ(report.count(LintKind::kNonMinimalPath), 0u);
  EXPECT_EQ(report.count(LintKind::kDanglingLftEntry), 0u);
  EXPECT_EQ(report.count(LintKind::kSlOutOfRange), 0u);
  EXPECT_EQ(report.count(LintKind::kEmptyLayer), 0u);
  EXPECT_GT(report.paths_checked, 0u);
}

TEST(Lints, MissingEntryIsUnreachable) {
  Topology topo = make_ring(4, 1);
  RouteResponse out = MinHopRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  const NodeId sw0 = topo.net.switch_by_index(0);
  const NodeId far = topo.net.terminal_by_index(2);  // on the opposite switch
  out.table.set_next(sw0, far, kInvalidChannel);
  LintReport report = lint_routing(topo.net, out.table);
  EXPECT_EQ(report.count(LintKind::kUnreachableDestination), 1u);
  EXPECT_FALSE(report.clean());
}

TEST(Lints, DetourPastBfsDistanceIsNonMinimal) {
  // Triangle fabric; detour a->b->c where the direct a->c link exists.
  Network net;
  const NodeId a = net.add_switch("a");
  const NodeId b = net.add_switch("b");
  const NodeId c = net.add_switch("c");
  net.add_link(a, b);
  net.add_link(b, c);
  net.add_link(a, c);
  net.add_terminal(a, "ta");
  net.add_terminal(b, "tb");
  const NodeId tc = net.add_terminal(c, "tc");
  net.freeze();
  Topology topo{"triangle", std::move(net), {}};

  RouteResponse out = MinHopRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  LintReport before = lint_routing(topo.net, out.table);
  EXPECT_EQ(before.count(LintKind::kNonMinimalPath), 0u);

  const ChannelId a_to_b = channel_from_slot(topo.net, a, b, 0);
  ASSERT_NE(a_to_b, kInvalidChannel);
  out.table.set_next(a, tc, a_to_b);  // b forwards to c minimally already
  LintReport after = lint_routing(topo.net, out.table);
  EXPECT_EQ(after.count(LintKind::kNonMinimalPath), 1u);
  ASSERT_FALSE(after.lints.empty());
}

TEST(Lints, DeclaredButUnusedLayerIsEmpty) {
  Topology topo = make_ring(4, 1);
  RouteResponse out = MinHopRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  ASSERT_EQ(out.table.num_layers(), 1);
  out.table.set_num_layers(2);  // everything still runs on layer 0
  LintReport report = lint_routing(topo.net, out.table);
  EXPECT_EQ(report.count(LintKind::kEmptyLayer), 1u);
}

TEST(Lints, SlBeyondDeclaredLayersIsFlagged) {
  Topology topo = make_ring(4, 1);
  RouteResponse out = MinHopRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  const NodeId sw0 = topo.net.switch_by_index(0);
  const NodeId far = topo.net.terminal_by_index(2);
  out.table.set_layer(sw0, far, 5);
  LintReport report = lint_routing(topo.net, out.table);
  EXPECT_EQ(report.count(LintKind::kSlOutOfRange), 1u);
}

TEST(Lints, ForwardingEntryForLocalTerminalIsDangling) {
  Topology topo = make_ring(4, 1);
  RouteResponse out = MinHopRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  const NodeId sw0 = topo.net.switch_by_index(0);
  const NodeId sw1 = topo.net.switch_by_index(1);
  const NodeId local = topo.net.terminal_by_index(0);  // attached to sw0
  ASSERT_EQ(topo.net.switch_of(local), sw0);
  const ChannelId c = channel_from_slot(topo.net, sw0, sw1, 0);
  ASSERT_NE(c, kInvalidChannel);
  out.table.set_next(sw0, local, c);
  LintReport report = lint_routing(topo.net, out.table);
  EXPECT_EQ(report.count(LintKind::kDanglingLftEntry), 1u);
}

TEST(Lints, ExcessLayersComparedToHardwareVls) {
  Topology topo = make_ring(4, 1);
  RouteResponse out = MinHopRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  out.table.set_num_layers(12);  // more than the 8 hardware VLs
  LintReport report = lint_routing(topo.net, out.table);
  EXPECT_EQ(report.count(LintKind::kExcessVirtualLayers), 1u);
  LintOptions generous;
  generous.hardware_vls = 16;
  EXPECT_EQ(lint_routing(topo.net, out.table, generous)
                .count(LintKind::kExcessVirtualLayers),
            0u);
}

TEST(Lints, DumpDuplicatesSurfaceAsFileLints) {
  Topology topo = make_ring(4, 1);
  const std::string text =
      "layers 1\n"
      "lft sw0 t1 sw1 0\n"
      "lft sw0 t1 sw1 0\n"
      "sl sw0 t1 0\n"
      "sl sw0 t1 0\n";
  std::istringstream is(text);
  DumpStats stats;
  RoutingTable table = read_forwarding_dump(topo.net, is, "dup-test", &stats);
  EXPECT_EQ(stats.duplicate_lft, 1u);
  EXPECT_EQ(stats.duplicate_sl, 1u);
  LintReport report = lint_routing(topo.net, table, {}, &stats);
  EXPECT_EQ(report.count(LintKind::kDuplicateLftEntry), 2u);
}

TEST(Lints, ReportIsThreadCountInvariant) {
  Rng rng(5);
  Topology topo = make_random(20, 2, 50, 8, rng);
  RouteResponse out = DfssspRouter().route(RouteRequest(topo));
  ASSERT_TRUE(out.ok);
  // Break a few entries so there is something to report.
  const NodeId sw0 = topo.net.switch_by_index(0);
  for (std::uint32_t i = 1; i < 4; ++i) {
    const NodeId t = topo.net.terminal_by_index(i * 5);
    if (topo.net.switch_of(t) == sw0) continue;
    out.table.set_next(sw0, t, kInvalidChannel);
  }
  LintReport serial = lint_routing(topo.net, out.table, {}, nullptr,
                                   ExecContext::serial());
  LintReport threaded = lint_routing(topo.net, out.table, {}, nullptr,
                                     ExecContext(4));
  EXPECT_EQ(serial.counts, threaded.counts);
  ASSERT_EQ(serial.lints.size(), threaded.lints.size());
  for (std::size_t i = 0; i < serial.lints.size(); ++i) {
    EXPECT_EQ(serial.lints[i].kind, threaded.lints[i].kind);
    EXPECT_EQ(serial.lints[i].message, threaded.lints[i].message);
  }
}

}  // namespace
}  // namespace dfsssp
