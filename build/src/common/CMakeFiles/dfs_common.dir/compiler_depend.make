# Empty compiler generated dependencies file for dfs_common.
# This may be replaced when dependencies are built.
