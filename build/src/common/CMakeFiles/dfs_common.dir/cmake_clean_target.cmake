file(REMOVE_RECURSE
  "libdfs_common.a"
)
