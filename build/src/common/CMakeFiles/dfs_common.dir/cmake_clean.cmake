file(REMOVE_RECURSE
  "CMakeFiles/dfs_common.dir/cli.cpp.o"
  "CMakeFiles/dfs_common.dir/cli.cpp.o.d"
  "CMakeFiles/dfs_common.dir/rng.cpp.o"
  "CMakeFiles/dfs_common.dir/rng.cpp.o.d"
  "CMakeFiles/dfs_common.dir/table.cpp.o"
  "CMakeFiles/dfs_common.dir/table.cpp.o.d"
  "CMakeFiles/dfs_common.dir/union_find.cpp.o"
  "CMakeFiles/dfs_common.dir/union_find.cpp.o.d"
  "libdfs_common.a"
  "libdfs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
