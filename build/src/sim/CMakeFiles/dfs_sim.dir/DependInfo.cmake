
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/appmodel.cpp" "src/sim/CMakeFiles/dfs_sim.dir/appmodel.cpp.o" "gcc" "src/sim/CMakeFiles/dfs_sim.dir/appmodel.cpp.o.d"
  "/root/repo/src/sim/congestion.cpp" "src/sim/CMakeFiles/dfs_sim.dir/congestion.cpp.o" "gcc" "src/sim/CMakeFiles/dfs_sim.dir/congestion.cpp.o.d"
  "/root/repo/src/sim/flitsim.cpp" "src/sim/CMakeFiles/dfs_sim.dir/flitsim.cpp.o" "gcc" "src/sim/CMakeFiles/dfs_sim.dir/flitsim.cpp.o.d"
  "/root/repo/src/sim/multipath_sim.cpp" "src/sim/CMakeFiles/dfs_sim.dir/multipath_sim.cpp.o" "gcc" "src/sim/CMakeFiles/dfs_sim.dir/multipath_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dfs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dfs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/dfs_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/dfs_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/cdg/CMakeFiles/dfs_cdg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
