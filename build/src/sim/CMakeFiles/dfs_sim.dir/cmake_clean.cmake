file(REMOVE_RECURSE
  "CMakeFiles/dfs_sim.dir/appmodel.cpp.o"
  "CMakeFiles/dfs_sim.dir/appmodel.cpp.o.d"
  "CMakeFiles/dfs_sim.dir/congestion.cpp.o"
  "CMakeFiles/dfs_sim.dir/congestion.cpp.o.d"
  "CMakeFiles/dfs_sim.dir/flitsim.cpp.o"
  "CMakeFiles/dfs_sim.dir/flitsim.cpp.o.d"
  "CMakeFiles/dfs_sim.dir/multipath_sim.cpp.o"
  "CMakeFiles/dfs_sim.dir/multipath_sim.cpp.o.d"
  "libdfs_sim.a"
  "libdfs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
