file(REMOVE_RECURSE
  "libdfs_topology.a"
)
