# Empty dependencies file for dfs_topology.
# This may be replaced when dependencies are built.
