file(REMOVE_RECURSE
  "CMakeFiles/dfs_topology.dir/generators.cpp.o"
  "CMakeFiles/dfs_topology.dir/generators.cpp.o.d"
  "CMakeFiles/dfs_topology.dir/io.cpp.o"
  "CMakeFiles/dfs_topology.dir/io.cpp.o.d"
  "CMakeFiles/dfs_topology.dir/metrics.cpp.o"
  "CMakeFiles/dfs_topology.dir/metrics.cpp.o.d"
  "CMakeFiles/dfs_topology.dir/network.cpp.o"
  "CMakeFiles/dfs_topology.dir/network.cpp.o.d"
  "libdfs_topology.a"
  "libdfs_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
