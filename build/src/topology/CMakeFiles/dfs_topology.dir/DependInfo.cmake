
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/generators.cpp" "src/topology/CMakeFiles/dfs_topology.dir/generators.cpp.o" "gcc" "src/topology/CMakeFiles/dfs_topology.dir/generators.cpp.o.d"
  "/root/repo/src/topology/io.cpp" "src/topology/CMakeFiles/dfs_topology.dir/io.cpp.o" "gcc" "src/topology/CMakeFiles/dfs_topology.dir/io.cpp.o.d"
  "/root/repo/src/topology/metrics.cpp" "src/topology/CMakeFiles/dfs_topology.dir/metrics.cpp.o" "gcc" "src/topology/CMakeFiles/dfs_topology.dir/metrics.cpp.o.d"
  "/root/repo/src/topology/network.cpp" "src/topology/CMakeFiles/dfs_topology.dir/network.cpp.o" "gcc" "src/topology/CMakeFiles/dfs_topology.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
