file(REMOVE_RECURSE
  "libdfs_traffic.a"
)
