# Empty compiler generated dependencies file for dfs_traffic.
# This may be replaced when dependencies are built.
