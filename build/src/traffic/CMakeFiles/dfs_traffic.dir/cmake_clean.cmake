file(REMOVE_RECURSE
  "CMakeFiles/dfs_traffic.dir/patterns.cpp.o"
  "CMakeFiles/dfs_traffic.dir/patterns.cpp.o.d"
  "libdfs_traffic.a"
  "libdfs_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
