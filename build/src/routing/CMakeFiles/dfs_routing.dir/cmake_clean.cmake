file(REMOVE_RECURSE
  "CMakeFiles/dfs_routing.dir/collect.cpp.o"
  "CMakeFiles/dfs_routing.dir/collect.cpp.o.d"
  "CMakeFiles/dfs_routing.dir/dfsssp.cpp.o"
  "CMakeFiles/dfs_routing.dir/dfsssp.cpp.o.d"
  "CMakeFiles/dfs_routing.dir/dor.cpp.o"
  "CMakeFiles/dfs_routing.dir/dor.cpp.o.d"
  "CMakeFiles/dfs_routing.dir/dor_dateline.cpp.o"
  "CMakeFiles/dfs_routing.dir/dor_dateline.cpp.o.d"
  "CMakeFiles/dfs_routing.dir/dump.cpp.o"
  "CMakeFiles/dfs_routing.dir/dump.cpp.o.d"
  "CMakeFiles/dfs_routing.dir/fattree.cpp.o"
  "CMakeFiles/dfs_routing.dir/fattree.cpp.o.d"
  "CMakeFiles/dfs_routing.dir/lash.cpp.o"
  "CMakeFiles/dfs_routing.dir/lash.cpp.o.d"
  "CMakeFiles/dfs_routing.dir/minhop.cpp.o"
  "CMakeFiles/dfs_routing.dir/minhop.cpp.o.d"
  "CMakeFiles/dfs_routing.dir/multipath.cpp.o"
  "CMakeFiles/dfs_routing.dir/multipath.cpp.o.d"
  "CMakeFiles/dfs_routing.dir/router.cpp.o"
  "CMakeFiles/dfs_routing.dir/router.cpp.o.d"
  "CMakeFiles/dfs_routing.dir/spath.cpp.o"
  "CMakeFiles/dfs_routing.dir/spath.cpp.o.d"
  "CMakeFiles/dfs_routing.dir/sssp.cpp.o"
  "CMakeFiles/dfs_routing.dir/sssp.cpp.o.d"
  "CMakeFiles/dfs_routing.dir/table.cpp.o"
  "CMakeFiles/dfs_routing.dir/table.cpp.o.d"
  "CMakeFiles/dfs_routing.dir/updown.cpp.o"
  "CMakeFiles/dfs_routing.dir/updown.cpp.o.d"
  "CMakeFiles/dfs_routing.dir/verify.cpp.o"
  "CMakeFiles/dfs_routing.dir/verify.cpp.o.d"
  "libdfs_routing.a"
  "libdfs_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
