
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/collect.cpp" "src/routing/CMakeFiles/dfs_routing.dir/collect.cpp.o" "gcc" "src/routing/CMakeFiles/dfs_routing.dir/collect.cpp.o.d"
  "/root/repo/src/routing/dfsssp.cpp" "src/routing/CMakeFiles/dfs_routing.dir/dfsssp.cpp.o" "gcc" "src/routing/CMakeFiles/dfs_routing.dir/dfsssp.cpp.o.d"
  "/root/repo/src/routing/dor.cpp" "src/routing/CMakeFiles/dfs_routing.dir/dor.cpp.o" "gcc" "src/routing/CMakeFiles/dfs_routing.dir/dor.cpp.o.d"
  "/root/repo/src/routing/dor_dateline.cpp" "src/routing/CMakeFiles/dfs_routing.dir/dor_dateline.cpp.o" "gcc" "src/routing/CMakeFiles/dfs_routing.dir/dor_dateline.cpp.o.d"
  "/root/repo/src/routing/dump.cpp" "src/routing/CMakeFiles/dfs_routing.dir/dump.cpp.o" "gcc" "src/routing/CMakeFiles/dfs_routing.dir/dump.cpp.o.d"
  "/root/repo/src/routing/fattree.cpp" "src/routing/CMakeFiles/dfs_routing.dir/fattree.cpp.o" "gcc" "src/routing/CMakeFiles/dfs_routing.dir/fattree.cpp.o.d"
  "/root/repo/src/routing/lash.cpp" "src/routing/CMakeFiles/dfs_routing.dir/lash.cpp.o" "gcc" "src/routing/CMakeFiles/dfs_routing.dir/lash.cpp.o.d"
  "/root/repo/src/routing/minhop.cpp" "src/routing/CMakeFiles/dfs_routing.dir/minhop.cpp.o" "gcc" "src/routing/CMakeFiles/dfs_routing.dir/minhop.cpp.o.d"
  "/root/repo/src/routing/multipath.cpp" "src/routing/CMakeFiles/dfs_routing.dir/multipath.cpp.o" "gcc" "src/routing/CMakeFiles/dfs_routing.dir/multipath.cpp.o.d"
  "/root/repo/src/routing/router.cpp" "src/routing/CMakeFiles/dfs_routing.dir/router.cpp.o" "gcc" "src/routing/CMakeFiles/dfs_routing.dir/router.cpp.o.d"
  "/root/repo/src/routing/spath.cpp" "src/routing/CMakeFiles/dfs_routing.dir/spath.cpp.o" "gcc" "src/routing/CMakeFiles/dfs_routing.dir/spath.cpp.o.d"
  "/root/repo/src/routing/sssp.cpp" "src/routing/CMakeFiles/dfs_routing.dir/sssp.cpp.o" "gcc" "src/routing/CMakeFiles/dfs_routing.dir/sssp.cpp.o.d"
  "/root/repo/src/routing/table.cpp" "src/routing/CMakeFiles/dfs_routing.dir/table.cpp.o" "gcc" "src/routing/CMakeFiles/dfs_routing.dir/table.cpp.o.d"
  "/root/repo/src/routing/updown.cpp" "src/routing/CMakeFiles/dfs_routing.dir/updown.cpp.o" "gcc" "src/routing/CMakeFiles/dfs_routing.dir/updown.cpp.o.d"
  "/root/repo/src/routing/verify.cpp" "src/routing/CMakeFiles/dfs_routing.dir/verify.cpp.o" "gcc" "src/routing/CMakeFiles/dfs_routing.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dfs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dfs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/cdg/CMakeFiles/dfs_cdg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
