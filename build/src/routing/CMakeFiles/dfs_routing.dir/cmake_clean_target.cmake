file(REMOVE_RECURSE
  "libdfs_routing.a"
)
