# Empty dependencies file for dfs_routing.
# This may be replaced when dependencies are built.
