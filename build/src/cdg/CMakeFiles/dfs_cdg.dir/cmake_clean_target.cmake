file(REMOVE_RECURSE
  "libdfs_cdg.a"
)
