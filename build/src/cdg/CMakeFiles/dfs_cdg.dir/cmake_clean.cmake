file(REMOVE_RECURSE
  "CMakeFiles/dfs_cdg.dir/app.cpp.o"
  "CMakeFiles/dfs_cdg.dir/app.cpp.o.d"
  "CMakeFiles/dfs_cdg.dir/cdg.cpp.o"
  "CMakeFiles/dfs_cdg.dir/cdg.cpp.o.d"
  "CMakeFiles/dfs_cdg.dir/online.cpp.o"
  "CMakeFiles/dfs_cdg.dir/online.cpp.o.d"
  "CMakeFiles/dfs_cdg.dir/report.cpp.o"
  "CMakeFiles/dfs_cdg.dir/report.cpp.o.d"
  "CMakeFiles/dfs_cdg.dir/verify.cpp.o"
  "CMakeFiles/dfs_cdg.dir/verify.cpp.o.d"
  "libdfs_cdg.a"
  "libdfs_cdg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_cdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
