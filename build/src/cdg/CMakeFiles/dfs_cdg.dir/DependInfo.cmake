
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cdg/app.cpp" "src/cdg/CMakeFiles/dfs_cdg.dir/app.cpp.o" "gcc" "src/cdg/CMakeFiles/dfs_cdg.dir/app.cpp.o.d"
  "/root/repo/src/cdg/cdg.cpp" "src/cdg/CMakeFiles/dfs_cdg.dir/cdg.cpp.o" "gcc" "src/cdg/CMakeFiles/dfs_cdg.dir/cdg.cpp.o.d"
  "/root/repo/src/cdg/online.cpp" "src/cdg/CMakeFiles/dfs_cdg.dir/online.cpp.o" "gcc" "src/cdg/CMakeFiles/dfs_cdg.dir/online.cpp.o.d"
  "/root/repo/src/cdg/report.cpp" "src/cdg/CMakeFiles/dfs_cdg.dir/report.cpp.o" "gcc" "src/cdg/CMakeFiles/dfs_cdg.dir/report.cpp.o.d"
  "/root/repo/src/cdg/verify.cpp" "src/cdg/CMakeFiles/dfs_cdg.dir/verify.cpp.o" "gcc" "src/cdg/CMakeFiles/dfs_cdg.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dfs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dfs_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
