# Empty compiler generated dependencies file for dfs_cdg.
# This may be replaced when dependencies are built.
