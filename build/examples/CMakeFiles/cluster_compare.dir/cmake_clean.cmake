file(REMOVE_RECURSE
  "CMakeFiles/cluster_compare.dir/cluster_compare.cpp.o"
  "CMakeFiles/cluster_compare.dir/cluster_compare.cpp.o.d"
  "cluster_compare"
  "cluster_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
