# Empty dependencies file for cluster_compare.
# This may be replaced when dependencies are built.
