
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_app.cpp" "tests/CMakeFiles/dfs_tests.dir/test_app.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_app.cpp.o.d"
  "/root/repo/tests/test_appmodel.cpp" "tests/CMakeFiles/dfs_tests.dir/test_appmodel.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_appmodel.cpp.o.d"
  "/root/repo/tests/test_cdg.cpp" "tests/CMakeFiles/dfs_tests.dir/test_cdg.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_cdg.cpp.o.d"
  "/root/repo/tests/test_cdg_report.cpp" "tests/CMakeFiles/dfs_tests.dir/test_cdg_report.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_cdg_report.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/dfs_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_congestion.cpp" "tests/CMakeFiles/dfs_tests.dir/test_congestion.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_congestion.cpp.o.d"
  "/root/repo/tests/test_determinism.cpp" "tests/CMakeFiles/dfs_tests.dir/test_determinism.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_determinism.cpp.o.d"
  "/root/repo/tests/test_dfsssp.cpp" "tests/CMakeFiles/dfs_tests.dir/test_dfsssp.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_dfsssp.cpp.o.d"
  "/root/repo/tests/test_dor.cpp" "tests/CMakeFiles/dfs_tests.dir/test_dor.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_dor.cpp.o.d"
  "/root/repo/tests/test_dor_dateline.cpp" "tests/CMakeFiles/dfs_tests.dir/test_dor_dateline.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_dor_dateline.cpp.o.d"
  "/root/repo/tests/test_dump.cpp" "tests/CMakeFiles/dfs_tests.dir/test_dump.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_dump.cpp.o.d"
  "/root/repo/tests/test_fattree.cpp" "tests/CMakeFiles/dfs_tests.dir/test_fattree.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_fattree.cpp.o.d"
  "/root/repo/tests/test_fault.cpp" "tests/CMakeFiles/dfs_tests.dir/test_fault.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_fault.cpp.o.d"
  "/root/repo/tests/test_flitsim.cpp" "tests/CMakeFiles/dfs_tests.dir/test_flitsim.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_flitsim.cpp.o.d"
  "/root/repo/tests/test_flitsim_wormhole.cpp" "tests/CMakeFiles/dfs_tests.dir/test_flitsim_wormhole.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_flitsim_wormhole.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/dfs_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_generators_modern.cpp" "tests/CMakeFiles/dfs_tests.dir/test_generators_modern.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_generators_modern.cpp.o.d"
  "/root/repo/tests/test_heap.cpp" "tests/CMakeFiles/dfs_tests.dir/test_heap.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_heap.cpp.o.d"
  "/root/repo/tests/test_ibnetdiscover.cpp" "tests/CMakeFiles/dfs_tests.dir/test_ibnetdiscover.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_ibnetdiscover.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/dfs_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/dfs_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_lash.cpp" "tests/CMakeFiles/dfs_tests.dir/test_lash.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_lash.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/dfs_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_minhop.cpp" "tests/CMakeFiles/dfs_tests.dir/test_minhop.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_minhop.cpp.o.d"
  "/root/repo/tests/test_multipath.cpp" "tests/CMakeFiles/dfs_tests.dir/test_multipath.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_multipath.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/dfs_tests.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_online_cdg.cpp" "tests/CMakeFiles/dfs_tests.dir/test_online_cdg.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_online_cdg.cpp.o.d"
  "/root/repo/tests/test_patterns.cpp" "tests/CMakeFiles/dfs_tests.dir/test_patterns.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_patterns.cpp.o.d"
  "/root/repo/tests/test_patterns_adversarial.cpp" "tests/CMakeFiles/dfs_tests.dir/test_patterns_adversarial.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_patterns_adversarial.cpp.o.d"
  "/root/repo/tests/test_property.cpp" "tests/CMakeFiles/dfs_tests.dir/test_property.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_property.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/dfs_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_routing_table.cpp" "tests/CMakeFiles/dfs_tests.dir/test_routing_table.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_routing_table.cpp.o.d"
  "/root/repo/tests/test_sssp.cpp" "tests/CMakeFiles/dfs_tests.dir/test_sssp.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_sssp.cpp.o.d"
  "/root/repo/tests/test_table_fmt.cpp" "tests/CMakeFiles/dfs_tests.dir/test_table_fmt.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_table_fmt.cpp.o.d"
  "/root/repo/tests/test_union_find.cpp" "tests/CMakeFiles/dfs_tests.dir/test_union_find.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_union_find.cpp.o.d"
  "/root/repo/tests/test_updown.cpp" "tests/CMakeFiles/dfs_tests.dir/test_updown.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_updown.cpp.o.d"
  "/root/repo/tests/test_verify_module.cpp" "tests/CMakeFiles/dfs_tests.dir/test_verify_module.cpp.o" "gcc" "tests/CMakeFiles/dfs_tests.dir/test_verify_module.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/dfs_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/cdg/CMakeFiles/dfs_cdg.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/dfs_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dfs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
