# Empty compiler generated dependencies file for dfs_tests.
# This may be replaced when dependencies are built.
