# Empty compiler generated dependencies file for bench_torus_routing.
# This may be replaced when dependencies are built.
