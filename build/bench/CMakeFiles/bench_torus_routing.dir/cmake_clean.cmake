file(REMOVE_RECURSE
  "CMakeFiles/bench_torus_routing.dir/bench_torus_routing.cpp.o"
  "CMakeFiles/bench_torus_routing.dir/bench_torus_routing.cpp.o.d"
  "bench_torus_routing"
  "bench_torus_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_torus_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
