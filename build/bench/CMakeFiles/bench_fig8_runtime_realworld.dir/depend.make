# Empty dependencies file for bench_fig8_runtime_realworld.
# This may be replaced when dependencies are built.
