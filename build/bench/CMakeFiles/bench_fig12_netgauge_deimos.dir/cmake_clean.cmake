file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_netgauge_deimos.dir/bench_fig12_netgauge_deimos.cpp.o"
  "CMakeFiles/bench_fig12_netgauge_deimos.dir/bench_fig12_netgauge_deimos.cpp.o.d"
  "bench_fig12_netgauge_deimos"
  "bench_fig12_netgauge_deimos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_netgauge_deimos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
