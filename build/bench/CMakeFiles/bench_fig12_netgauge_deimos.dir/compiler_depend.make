# Empty compiler generated dependencies file for bench_fig12_netgauge_deimos.
# This may be replaced when dependencies are built.
