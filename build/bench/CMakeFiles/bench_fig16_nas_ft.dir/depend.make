# Empty dependencies file for bench_fig16_nas_ft.
# This may be replaced when dependencies are built.
