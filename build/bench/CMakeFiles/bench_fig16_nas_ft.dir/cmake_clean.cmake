file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_nas_ft.dir/bench_fig16_nas_ft.cpp.o"
  "CMakeFiles/bench_fig16_nas_ft.dir/bench_fig16_nas_ft.cpp.o.d"
  "bench_fig16_nas_ft"
  "bench_fig16_nas_ft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_nas_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
