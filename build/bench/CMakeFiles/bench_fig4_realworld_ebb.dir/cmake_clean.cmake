file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_realworld_ebb.dir/bench_fig4_realworld_ebb.cpp.o"
  "CMakeFiles/bench_fig4_realworld_ebb.dir/bench_fig4_realworld_ebb.cpp.o.d"
  "bench_fig4_realworld_ebb"
  "bench_fig4_realworld_ebb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_realworld_ebb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
