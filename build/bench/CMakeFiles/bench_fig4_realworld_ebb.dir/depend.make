# Empty dependencies file for bench_fig4_realworld_ebb.
# This may be replaced when dependencies are built.
