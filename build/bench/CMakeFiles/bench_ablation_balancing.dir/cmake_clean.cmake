file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_balancing.dir/bench_ablation_balancing.cpp.o"
  "CMakeFiles/bench_ablation_balancing.dir/bench_ablation_balancing.cpp.o.d"
  "bench_ablation_balancing"
  "bench_ablation_balancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
