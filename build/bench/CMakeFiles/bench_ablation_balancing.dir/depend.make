# Empty dependencies file for bench_ablation_balancing.
# This may be replaced when dependencies are built.
