file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_alltoall.dir/bench_fig13_alltoall.cpp.o"
  "CMakeFiles/bench_fig13_alltoall.dir/bench_fig13_alltoall.cpp.o.d"
  "bench_fig13_alltoall"
  "bench_fig13_alltoall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
