# Empty dependencies file for bench_fig13_alltoall.
# This may be replaced when dependencies are built.
