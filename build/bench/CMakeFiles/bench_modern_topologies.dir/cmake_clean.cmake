file(REMOVE_RECURSE
  "CMakeFiles/bench_modern_topologies.dir/bench_modern_topologies.cpp.o"
  "CMakeFiles/bench_modern_topologies.dir/bench_modern_topologies.cpp.o.d"
  "bench_modern_topologies"
  "bench_modern_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_modern_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
