# Empty dependencies file for bench_modern_topologies.
# This may be replaced when dependencies are built.
