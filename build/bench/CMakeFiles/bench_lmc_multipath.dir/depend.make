# Empty dependencies file for bench_lmc_multipath.
# This may be replaced when dependencies are built.
