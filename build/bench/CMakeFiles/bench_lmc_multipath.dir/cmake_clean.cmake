file(REMOVE_RECURSE
  "CMakeFiles/bench_lmc_multipath.dir/bench_lmc_multipath.cpp.o"
  "CMakeFiles/bench_lmc_multipath.dir/bench_lmc_multipath.cpp.o.d"
  "bench_lmc_multipath"
  "bench_lmc_multipath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lmc_multipath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
