file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_nas_bt.dir/bench_fig14_nas_bt.cpp.o"
  "CMakeFiles/bench_fig14_nas_bt.dir/bench_fig14_nas_bt.cpp.o.d"
  "bench_fig14_nas_bt"
  "bench_fig14_nas_bt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_nas_bt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
