# Empty dependencies file for bench_fig14_nas_bt.
# This may be replaced when dependencies are built.
