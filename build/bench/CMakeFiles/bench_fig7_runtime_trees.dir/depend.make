# Empty dependencies file for bench_fig7_runtime_trees.
# This may be replaced when dependencies are built.
