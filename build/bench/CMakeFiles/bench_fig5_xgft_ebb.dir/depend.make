# Empty dependencies file for bench_fig5_xgft_ebb.
# This may be replaced when dependencies are built.
