
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_app_exact_gap.cpp" "bench/CMakeFiles/bench_app_exact_gap.dir/bench_app_exact_gap.cpp.o" "gcc" "bench/CMakeFiles/bench_app_exact_gap.dir/bench_app_exact_gap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/dfs_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/cdg/CMakeFiles/dfs_cdg.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/dfs_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dfs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
