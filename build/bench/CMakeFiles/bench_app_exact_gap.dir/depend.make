# Empty dependencies file for bench_app_exact_gap.
# This may be replaced when dependencies are built.
