file(REMOVE_RECURSE
  "CMakeFiles/bench_app_exact_gap.dir/bench_app_exact_gap.cpp.o"
  "CMakeFiles/bench_app_exact_gap.dir/bench_app_exact_gap.cpp.o.d"
  "bench_app_exact_gap"
  "bench_app_exact_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_exact_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
