# Empty dependencies file for bench_fig9_vl_random.
# This may be replaced when dependencies are built.
