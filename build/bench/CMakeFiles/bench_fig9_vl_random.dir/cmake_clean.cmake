file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_vl_random.dir/bench_fig9_vl_random.cpp.o"
  "CMakeFiles/bench_fig9_vl_random.dir/bench_fig9_vl_random.cpp.o.d"
  "bench_fig9_vl_random"
  "bench_fig9_vl_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_vl_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
