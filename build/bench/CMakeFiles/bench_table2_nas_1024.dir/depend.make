# Empty dependencies file for bench_table2_nas_1024.
# This may be replaced when dependencies are built.
