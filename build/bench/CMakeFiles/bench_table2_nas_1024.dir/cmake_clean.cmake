file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_nas_1024.dir/bench_table2_nas_1024.cpp.o"
  "CMakeFiles/bench_table2_nas_1024.dir/bench_table2_nas_1024.cpp.o.d"
  "bench_table2_nas_1024"
  "bench_table2_nas_1024.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_nas_1024.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
