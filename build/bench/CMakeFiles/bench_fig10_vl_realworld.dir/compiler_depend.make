# Empty compiler generated dependencies file for bench_fig10_vl_realworld.
# This may be replaced when dependencies are built.
