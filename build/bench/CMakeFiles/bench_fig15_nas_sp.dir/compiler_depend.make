# Empty compiler generated dependencies file for bench_fig15_nas_sp.
# This may be replaced when dependencies are built.
