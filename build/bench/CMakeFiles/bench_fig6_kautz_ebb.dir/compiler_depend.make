# Empty compiler generated dependencies file for bench_fig6_kautz_ebb.
# This may be replaced when dependencies are built.
