file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_kautz_ebb.dir/bench_fig6_kautz_ebb.cpp.o"
  "CMakeFiles/bench_fig6_kautz_ebb.dir/bench_fig6_kautz_ebb.cpp.o.d"
  "bench_fig6_kautz_ebb"
  "bench_fig6_kautz_ebb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_kautz_ebb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
